//! The sequential Branch-and-Bound solver (the paper's single-CPU-core
//! baseline).
//!
//! One iteration performs the four operators of Section II-A: **selection**
//! (pop from the pool), **elimination** (discard if the bound reached the
//! incumbent), **branching** (one child per unscheduled job) and **bounding**
//! (evaluate every child's lower bound). Each operator is timed separately so
//! the "bounding dominates the wall time" preliminary experiment of the paper
//! can be reproduced.

use crate::node::FspNode;
use crate::pool::PoolStrategy;
use crate::problem::{FspProblem, NodeBound};
use crate::stats::{OperatorTimes, SolveStats};
use crate::upper_bound::SharedUpperBound;
use fsp::{Job, Time};
use std::time::{Duration, Instant};

/// Why a solve terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The pool emptied: the returned incumbent is optimal.
    Exhausted,
    /// The configured node budget was spent.
    NodeLimit,
    /// The configured wall-clock budget was spent.
    TimeLimit,
    /// The solve paused at a batch boundary to emit a resumable checkpoint
    /// (GPU solver only — see the core crate's `checkpoint_after`).
    Checkpoint,
}

/// Configuration of a sequential solve.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Selection strategy (the paper uses best-first).
    pub strategy: PoolStrategy,
    /// Stop after this many lower-bound evaluations.
    pub node_limit: Option<u64>,
    /// Stop after this much wall-clock time.
    pub time_limit: Option<Duration>,
    /// Seed the incumbent with the NEH heuristic before exploring.
    pub use_initial_ub: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            strategy: PoolStrategy::BestFirst,
            node_limit: None,
            time_limit: None,
            use_initial_ub: true,
        }
    }
}

/// Result of a sequential solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Best makespan found (the optimum when `stop == Exhausted` and the
    /// search started from the root).
    pub best_makespan: Time,
    /// Schedule achieving `best_makespan`, if any complete schedule was
    /// reached or supplied as the initial incumbent.
    pub best_schedule: Option<Vec<Job>>,
    /// Node counters.
    pub stats: SolveStats,
    /// Per-operator wall-clock breakdown.
    pub times: OperatorTimes,
    /// Why the solve stopped.
    pub stop: StopReason,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl SolveOutcome {
    /// `true` when the search proved optimality (explored or pruned the whole
    /// tree).
    pub fn is_optimal(&self) -> bool {
        self.stop == StopReason::Exhausted
    }
}

/// The sequential B&B solver.
pub struct SerialSolver<B = fsp::JohnsonLowerBound> {
    problem: FspProblem<B>,
    config: SolverConfig,
}

impl<B: NodeBound> SerialSolver<B> {
    /// Creates a solver for `problem` with the given configuration.
    pub fn new(problem: FspProblem<B>, config: SolverConfig) -> Self {
        Self { problem, config }
    }

    /// Creates a solver with the default (best-first, NEH-seeded)
    /// configuration.
    pub fn with_defaults(problem: FspProblem<B>) -> Self {
        Self::new(problem, SolverConfig::default())
    }

    /// The underlying problem.
    pub fn problem(&self) -> &FspProblem<B> {
        &self.problem
    }

    /// Solves from the root of the tree.
    pub fn solve(&self) -> SolveOutcome {
        let mut root = self.problem.root();
        self.problem.bound(&mut root);
        self.solve_from(vec![root], None, None)
    }

    /// Continues a solve from an explicit list of pending sub-problems — the
    /// frozen-pool protocol used throughout the paper's evaluation so that
    /// the serial baseline and the accelerated solvers examine exactly the
    /// same nodes.
    ///
    /// `initial_ub` (and optionally the schedule achieving it) seeds the
    /// incumbent; when `None`, NEH is used if the configuration asks for it.
    pub fn solve_from(
        &self,
        initial_nodes: Vec<FspNode>,
        initial_ub: Option<Time>,
        initial_schedule: Option<Vec<Job>>,
    ) -> SolveOutcome {
        let start = Instant::now();
        let mut stats = SolveStats::default();
        let mut times = OperatorTimes::default();

        // Incumbent.
        let mut best_schedule = initial_schedule;
        let ub = match initial_ub {
            Some(v) => SharedUpperBound::new(v),
            None if self.config.use_initial_ub => {
                let (perm, value) = self.problem.initial_upper_bound();
                best_schedule = Some(perm);
                SharedUpperBound::new(value)
            }
            None => SharedUpperBound::unbounded(),
        };

        let mut pool = self.config.strategy.build();
        for node in initial_nodes {
            pool.push(node);
        }
        stats.max_pool = pool.len();

        let mut stop = StopReason::Exhausted;
        let mut children: Vec<FspNode> = Vec::new();
        loop {
            if let Some(limit) = self.config.node_limit {
                if stats.bounded >= limit {
                    stop = StopReason::NodeLimit;
                    break;
                }
            }
            if let Some(limit) = self.config.time_limit {
                if start.elapsed() >= limit {
                    stop = StopReason::TimeLimit;
                    break;
                }
            }

            // Selection.
            let t0 = Instant::now();
            let node = pool.pop();
            times.selection += t0.elapsed();
            let Some(node) = node else {
                break;
            };
            stats.selected += 1;

            // Elimination of the selected node (its bound may have been
            // computed before the incumbent improved).
            let t0 = Instant::now();
            let prune = ub.prunes(node.bound());
            times.elimination += t0.elapsed();
            if prune {
                stats.pruned += 1;
                continue;
            }

            // Branching (into the reused buffer).
            let t0 = Instant::now();
            children.clear();
            self.problem.branch_into(&node, &mut children);
            times.branching += t0.elapsed();
            stats.decomposed += 1;

            // Bounding + elimination of the children.
            for mut child in children.drain(..) {
                let t0 = Instant::now();
                self.problem.bound(&mut child);
                times.bounding += t0.elapsed();
                stats.bounded += 1;

                let t0 = Instant::now();
                if self.problem.is_leaf(&child) {
                    stats.leaves += 1;
                    let cost = self.problem.leaf_cost(&child);
                    if ub.try_improve(cost) {
                        stats.improvements += 1;
                        best_schedule = Some(child.prefix_vec());
                    }
                } else if ub.prunes(child.bound()) {
                    stats.pruned += 1;
                } else {
                    pool.push(child);
                }
                times.elimination += t0.elapsed();
            }
            stats.max_pool = stats.max_pool.max(pool.len());
        }

        SolveOutcome {
            best_makespan: ub.get(),
            best_schedule,
            stats,
            times,
            stop,
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp::brute::brute_force_optimal;
    use fsp::taillard::generate;
    use fsp::OneMachineBound;

    fn solve_default(inst: fsp::Instance) -> SolveOutcome {
        SerialSolver::with_defaults(FspProblem::new(inst)).solve()
    }

    #[test]
    fn finds_the_optimum_of_tiny_instances() {
        for seed in 1..=8 {
            let inst = generate(format!("t{seed}"), 7, 4, seed * 37);
            let (_, expected) = brute_force_optimal(&inst);
            let outcome = solve_default(inst.clone());
            assert!(outcome.is_optimal());
            assert_eq!(
                outcome.best_makespan, expected,
                "wrong optimum for seed {seed}"
            );
            let sched = outcome.best_schedule.expect("schedule");
            assert_eq!(fsp::makespan(&inst, &sched), expected);
        }
    }

    #[test]
    fn optimum_is_independent_of_the_selection_strategy() {
        let inst = generate("t", 8, 5, 4242);
        let (_, expected) = brute_force_optimal(&inst);
        for strategy in [
            PoolStrategy::BestFirst,
            PoolStrategy::DepthFirst,
            PoolStrategy::Fifo,
        ] {
            let config = SolverConfig {
                strategy,
                ..Default::default()
            };
            let outcome = SerialSolver::new(FspProblem::new(inst.clone()), config).solve();
            assert_eq!(outcome.best_makespan, expected, "strategy {strategy:?}");
        }
    }

    #[test]
    fn weaker_bound_explores_at_least_as_many_nodes() {
        let inst = generate("t", 8, 4, 99);
        let strong = solve_default(inst.clone());
        let weak = SerialSolver::with_defaults(FspProblem::with_bound(
            inst.clone(),
            OneMachineBound::new(&inst),
        ))
        .solve();
        assert_eq!(strong.best_makespan, weak.best_makespan);
        assert!(weak.stats.bounded >= strong.stats.bounded);
    }

    #[test]
    fn node_limit_stops_the_search() {
        let inst = generate("t", 12, 10, 5);
        let config = SolverConfig {
            node_limit: Some(500),
            ..Default::default()
        };
        let outcome = SerialSolver::new(FspProblem::new(inst), config).solve();
        assert_eq!(outcome.stop, StopReason::NodeLimit);
        assert!(outcome.stats.bounded >= 500);
        // A NEH incumbent exists even when the search is truncated.
        assert!(outcome.best_schedule.is_some());
    }

    #[test]
    fn time_limit_stops_the_search() {
        let inst = generate("t", 14, 15, 6);
        let config = SolverConfig {
            time_limit: Some(Duration::from_millis(50)),
            ..Default::default()
        };
        let outcome = SerialSolver::new(FspProblem::new(inst), config).solve();
        assert_eq!(outcome.stop, StopReason::TimeLimit);
        assert!(outcome.elapsed >= Duration::from_millis(50));
    }

    #[test]
    fn without_initial_ub_the_first_leaves_set_the_incumbent() {
        let inst = generate("t", 6, 3, 8);
        let (_, expected) = brute_force_optimal(&inst);
        let config = SolverConfig {
            use_initial_ub: false,
            ..Default::default()
        };
        let outcome = SerialSolver::new(FspProblem::new(inst), config).solve();
        assert_eq!(outcome.best_makespan, expected);
        assert!(outcome.stats.improvements >= 1);
    }

    #[test]
    fn bounding_dominates_operator_times_on_wide_instances() {
        // The paper's preliminary observation: with m = 20 machines the
        // bounding operator takes the overwhelming share of the time.
        let inst = generate("t", 14, 20, 11);
        let config = SolverConfig {
            node_limit: Some(3_000),
            ..Default::default()
        };
        let outcome = SerialSolver::new(FspProblem::new(inst), config).solve();
        assert!(
            outcome.times.bounding_share() > 0.8,
            "bounding share unexpectedly low: {}",
            outcome.times.bounding_share()
        );
    }

    #[test]
    fn solve_from_a_frozen_list_reaches_the_same_optimum() {
        let inst = generate("t", 8, 4, 21);
        let (_, expected) = brute_force_optimal(&inst);
        let problem = FspProblem::new(inst.clone());
        // Manually freeze the pool after expanding the root.
        let mut root = problem.root();
        problem.bound(&mut root);
        let mut frozen = Vec::new();
        for mut child in problem.branch(&root) {
            problem.bound(&mut child);
            frozen.push(child);
        }
        let solver = SerialSolver::with_defaults(problem);
        let outcome = solver.solve_from(frozen, None, None);
        assert_eq!(outcome.best_makespan, expected);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let inst = generate("t", 7, 5, 3);
        let outcome = solve_default(inst);
        assert!(outcome.stats.selected >= outcome.stats.decomposed);
        assert!(outcome.stats.bounded >= outcome.stats.leaves);
        assert!(outcome.stats.max_pool > 0);
    }
}
