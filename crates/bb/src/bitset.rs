//! A small fixed-capacity bitset over job indices.
//!
//! B&B nodes need a compact representation of "which jobs are already
//! scheduled"; with at most a few hundred jobs (Taillard instances go up to
//! 500) a handful of `u64` words is enough and keeps nodes cheap to clone —
//! important because the GPU off-load engine materialises hundreds of
//! thousands of nodes per iteration.

/// A set of job indices in `0..capacity`, stored as packed 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobSet {
    words: Vec<u64>,
    capacity: usize,
}

impl JobSet {
    /// Creates an empty set able to hold jobs `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing every job in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for j in 0..capacity {
            s.insert(j);
        }
        s
    }

    /// Maximum job index (exclusive) this set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `job`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `job >= capacity`.
    pub fn insert(&mut self, job: usize) -> bool {
        assert!(
            job < self.capacity,
            "job {job} out of capacity {}",
            self.capacity
        );
        let (w, b) = (job / 64, job % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `job`; returns `true` if it was present.
    pub fn remove(&mut self, job: usize) -> bool {
        assert!(
            job < self.capacity,
            "job {job} out of capacity {}",
            self.capacity
        );
        let (w, b) = (job / 64, job % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, job: usize) -> bool {
        if job >= self.capacity {
            return false;
        }
        let (w, b) = (job / 64, job % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of jobs in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Iterates the jobs of `0..capacity` **not** in the set, in increasing
    /// order.
    pub fn iter_absent(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.capacity).filter(move |&j| !self.contains(j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = JobSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn full_contains_everything() {
        let s = JobSet::full(70);
        assert_eq!(s.len(), 70);
        assert!((0..70).all(|j| s.contains(j)));
        assert_eq!(s.iter_absent().count(), 0);
    }

    #[test]
    fn iteration_order_is_increasing() {
        let mut s = JobSet::new(200);
        for j in [150, 3, 64, 65, 199, 0] {
            s.insert(j);
        }
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![0, 3, 64, 65, 150, 199]);
        assert_eq!(s.iter_absent().count(), 194);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = JobSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        JobSet::new(10).insert(10);
    }

    #[test]
    fn word_boundary_behaviour() {
        let mut s = JobSet::new(130);
        s.insert(63);
        s.insert(64);
        s.insert(127);
        s.insert(128);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![63, 64, 127, 128]);
        s.remove(64);
        assert_eq!(s.len(), 3);
    }

    proptest! {
        #[test]
        fn matches_reference_hashset(ops in proptest::collection::vec((0usize..300, any::<bool>()), 0..200)) {
            let mut set = JobSet::new(300);
            let mut reference = std::collections::HashSet::new();
            for (j, add) in ops {
                if add {
                    prop_assert_eq!(set.insert(j), reference.insert(j));
                } else {
                    prop_assert_eq!(set.remove(j), reference.remove(&j));
                }
            }
            prop_assert_eq!(set.len(), reference.len());
            let mut sorted: Vec<_> = reference.into_iter().collect();
            sorted.sort_unstable();
            prop_assert_eq!(set.iter().collect::<Vec<_>>(), sorted);
        }

        #[test]
        fn absent_and_present_partition_the_domain(jobs in proptest::collection::hash_set(0usize..128, 0..128)) {
            let mut set = JobSet::new(128);
            for &j in &jobs {
                set.insert(j);
            }
            let present = set.iter().count();
            let absent = set.iter_absent().count();
            prop_assert_eq!(present + absent, 128);
        }
    }
}
