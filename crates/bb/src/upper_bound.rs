//! The shared incumbent (upper bound).
//!
//! Sequential solvers could keep the upper bound in a local variable, but the
//! multi-core baseline and the hybrid GPU+multi-core solver need a value that
//! many workers can read cheaply and improve atomically, so a single
//! lock-free implementation is shared by everyone.

use fsp::Time;
use std::sync::atomic::{AtomicU32, Ordering};

/// A monotonically decreasing, atomically updated upper bound on the optimal
/// makespan.
#[derive(Debug)]
pub struct SharedUpperBound {
    value: AtomicU32,
}

impl SharedUpperBound {
    /// Creates an upper bound with no incumbent yet (`Time::MAX`).
    pub fn unbounded() -> Self {
        Self {
            value: AtomicU32::new(Time::MAX),
        }
    }

    /// Creates an upper bound seeded with a known feasible cost (e.g. NEH).
    pub fn new(initial: Time) -> Self {
        Self {
            value: AtomicU32::new(initial),
        }
    }

    /// Current upper bound.
    #[inline]
    pub fn get(&self) -> Time {
        self.value.load(Ordering::Acquire)
    }

    /// Attempts to lower the bound to `candidate`. Returns `true` if
    /// `candidate` was strictly better than the value at the time of the
    /// update (i.e. this caller is the one that improved the incumbent).
    pub fn try_improve(&self, candidate: Time) -> bool {
        let mut current = self.value.load(Ordering::Acquire);
        while candidate < current {
            match self.value.compare_exchange_weak(
                current,
                candidate,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
        false
    }

    /// `true` when a node with lower bound `lb` cannot improve on the
    /// incumbent and must be eliminated ("LB ≥ UB ⇒ prune", Figure 1 of the
    /// paper).
    #[inline]
    pub fn prunes(&self, lb: Time) -> bool {
        lb >= self.get()
    }
}

impl Default for SharedUpperBound {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn improve_only_accepts_strictly_better_values() {
        let ub = SharedUpperBound::new(100);
        assert!(!ub.try_improve(100));
        assert!(!ub.try_improve(150));
        assert!(ub.try_improve(90));
        assert_eq!(ub.get(), 90);
        assert!(ub.try_improve(10));
        assert_eq!(ub.get(), 10);
    }

    #[test]
    fn prunes_uses_greater_or_equal() {
        let ub = SharedUpperBound::new(50);
        assert!(ub.prunes(50));
        assert!(ub.prunes(51));
        assert!(!ub.prunes(49));
    }

    #[test]
    fn unbounded_never_prunes_finite_bounds() {
        let ub = SharedUpperBound::unbounded();
        assert!(!ub.prunes(Time::MAX - 1));
        assert!(ub.prunes(Time::MAX));
    }

    #[test]
    fn concurrent_improvements_keep_the_minimum() {
        let ub = Arc::new(SharedUpperBound::new(1_000_000));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let ub = Arc::clone(&ub);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u32 {
                    ub.try_improve(1_000_000 - (i * 8 + t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The global minimum of all candidates must have won.
        assert_eq!(ub.get(), 1_000_000 - (999 * 8 + 7));
    }
}
