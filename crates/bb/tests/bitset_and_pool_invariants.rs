//! Satellite test suite: `JobSet` round-trips and pool strategy invariants
//! (FIFO order, LIFO order, best-first bound ordering) checked over random
//! operation sequences.

use bb::{BestFirstPool, DepthFirstPool, FifoPool, FspNode, JobSet, Pool, PoolStrategy};
use fsp::taillard::generate;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// JobSet round-trips
// ---------------------------------------------------------------------------

#[test]
fn jobset_insert_iterate_remove_round_trip() {
    let mut set = JobSet::new(200);
    let jobs = [0usize, 1, 63, 64, 65, 127, 128, 199];
    for &j in &jobs {
        assert!(set.insert(j), "first insert of {j} must report true");
    }
    assert_eq!(set.iter().collect::<Vec<_>>(), jobs.to_vec());
    for &j in &jobs {
        assert!(set.contains(j));
        assert!(set.remove(j), "first remove of {j} must report true");
        assert!(!set.contains(j));
    }
    assert!(set.is_empty());
    assert_eq!(set.iter_absent().count(), 200);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Applying a random insert/remove trace and then removing everything the
    /// iterator reports must leave the set empty — i.e. `iter` sees exactly
    /// the live elements and `remove` clears exactly one each.
    #[test]
    fn jobset_iterate_then_remove_all_empties_the_set(
        ops in proptest::collection::vec((0usize..150, any::<bool>()), 0..300)
    ) {
        let mut set = JobSet::new(150);
        for (j, add) in ops {
            if add {
                set.insert(j);
            } else {
                set.remove(j);
            }
        }
        let live: Vec<usize> = set.iter().collect();
        prop_assert_eq!(live.len(), set.len());
        // Iteration order must be strictly increasing.
        prop_assert!(live.windows(2).all(|w| w[0] < w[1]));
        for j in live {
            prop_assert!(set.remove(j));
        }
        prop_assert!(set.is_empty());
    }
}

// ---------------------------------------------------------------------------
// Pool strategy invariants
// ---------------------------------------------------------------------------

fn nodes_with_bounds(bounds: &[u32]) -> Vec<FspNode> {
    let inst = generate("pool-inv", bounds.len().max(2), 3, 7);
    bounds
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            let mut node = FspNode::from_prefix(&inst, &[i]);
            node.set_bound(b);
            node
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FIFO: pop order equals push order, for any bound values.
    #[test]
    fn fifo_pool_preserves_insertion_order(bounds in proptest::collection::vec(1u32..500, 1..9)) {
        let nodes = nodes_with_bounds(&bounds);
        let mut pool = FifoPool::new();
        let expected: Vec<Vec<usize>> = nodes.iter().map(|n| n.prefix_vec()).collect();
        for node in nodes {
            pool.push(node);
        }
        let popped: Vec<Vec<usize>> = std::iter::from_fn(|| pool.pop()).map(|n| n.prefix_vec()).collect();
        prop_assert_eq!(popped, expected);
    }

    /// LIFO (depth-first): pop order is the reverse of push order.
    #[test]
    fn depth_first_pool_is_lifo(bounds in proptest::collection::vec(1u32..500, 1..9)) {
        let nodes = nodes_with_bounds(&bounds);
        let mut pool = DepthFirstPool::new();
        let mut expected: Vec<Vec<usize>> = nodes.iter().map(|n| n.prefix_vec()).collect();
        expected.reverse();
        for node in nodes {
            pool.push(node);
        }
        let popped: Vec<Vec<usize>> = std::iter::from_fn(|| pool.pop()).map(|n| n.prefix_vec()).collect();
        prop_assert_eq!(popped, expected);
    }

    /// Best-first: popped bounds come out in non-decreasing order, whatever
    /// the insertion order was.
    #[test]
    fn best_first_pool_pops_bounds_sorted(bounds in proptest::collection::vec(1u32..500, 1..9)) {
        let nodes = nodes_with_bounds(&bounds);
        let mut pool = BestFirstPool::new();
        for node in nodes {
            pool.push(node);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| pool.pop()).map(|n| n.bound()).collect();
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        prop_assert_eq!(popped, sorted);
    }

    /// Every strategy conserves nodes: what goes in comes out exactly once,
    /// whether popped one at a time, in chunks, or drained.
    #[test]
    fn pools_conserve_nodes(bounds in proptest::collection::vec(1u32..500, 1..12), chunk in 1usize..5) {
        for strategy in [PoolStrategy::BestFirst, PoolStrategy::DepthFirst, PoolStrategy::Fifo] {
            let nodes = nodes_with_bounds(&bounds);
            let mut expected: Vec<Vec<usize>> = nodes.iter().map(|n| n.prefix_vec()).collect();
            expected.sort();

            let mut pool = strategy.build();
            for node in nodes {
                pool.push(node);
            }
            prop_assert_eq!(pool.len(), bounds.len());

            let mut seen: Vec<Vec<usize>> = Vec::new();
            let first_chunk = pool.pop_many(chunk);
            prop_assert_eq!(first_chunk.len(), chunk.min(bounds.len()));
            seen.extend(first_chunk.iter().map(|n| n.prefix_vec()));
            seen.extend(pool.drain_all().iter().map(|n| n.prefix_vec()));
            prop_assert!(pool.is_empty());

            seen.sort();
            prop_assert_eq!(&seen, &expected, "strategy {:?}", strategy);
        }
    }
}
