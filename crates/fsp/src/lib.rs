//! # fsp — the permutation Flow-Shop Scheduling Problem
//!
//! Domain substrate for the reproduction of *Melab, Chakroun, Mezmaz, Tuyttens —
//! "A GPU-accelerated Branch-and-Bound Algorithm for the Flow-Shop Scheduling
//! Problem", IEEE CLUSTER 2012*.
//!
//! The permutation Flow-Shop Problem (FSP) schedules `n` jobs on `m` machines.
//! Every job visits machine `M1, M2, …, Mm` in that order, every machine
//! processes the jobs in the *same* order (a permutation), and the objective is
//! to minimise the *makespan* `Cmax` — the completion time of the last job on
//! the last machine.
//!
//! This crate provides:
//!
//! * [`Instance`] — processing-time matrices, including the
//!   [`taillard`] benchmark generator used in the paper's evaluation;
//! * [`schedule`] — makespan evaluation of complete and partial permutations;
//! * [`johnson`] — Johnson's exact algorithm for the 2-machine case and
//!   Johnson's rule with time lags (the building block of the lower bound);
//! * [`bound`] — the six data structures (`PTM`, `LM`, `JM`, `RM`, `QM`, `MM`)
//!   of Table I and the lower-bound function of Figure 2 of the paper, plus a
//!   cheaper single-machine bound for ablation studies;
//! * [`neh`] — the NEH constructive heuristic, used to seed the upper bound;
//! * [`brute`] — exhaustive enumeration for tiny instances (test oracle).

#![warn(missing_docs)]

pub mod brute;
pub mod instance;
pub mod io;
pub mod johnson;
pub mod neh;
pub mod schedule;
pub mod taillard;

pub mod bound;

pub use bound::data::BoundData;
pub use bound::johnson_lb::JohnsonLowerBound;
pub use bound::lb1::OneMachineBound;
pub use bound::{BoundScratch, LowerBound};
pub use instance::Instance;
pub use schedule::{makespan, makespan_prefix, PartialSchedule};

/// A job index. Jobs are numbered `0..n`.
pub type Job = usize;

/// A machine index. Machines are numbered `0..m`.
pub type Machine = usize;

/// A processing time / completion time / makespan value.
///
/// Taillard instances use processing times in `1..=99`, so with `n ≤ 500` and
/// `m ≤ 20` every completion time fits comfortably in a `u32`.
pub type Time = u32;
