//! Lower bounds for the permutation Flow-Shop problem.
//!
//! The efficiency of a B&B solver depends critically on its lower-bound
//! function. The paper uses the two-machine relaxation bound of
//! Lageweg, Lenstra and Rinnooy Kan (1978), built on Johnson's algorithm
//! (1954); its data structures and pseudo-code are reproduced in Table I and
//! Figure 2 of the paper and implemented in [`data`] and [`johnson_lb`].
//!
//! A cheaper single-machine bound ([`lb1`]) is provided for ablation studies
//! (bound quality vs bound cost), and [`counts`] models the memory-access
//! complexities of Table I, which drive the GPU data-placement decision.

pub mod counts;
pub mod data;
pub mod johnson_lb;
pub mod lb1;

use crate::schedule::PartialSchedule;
use crate::Time;
use std::cell::RefCell;

/// Reusable per-machine working arrays for the host-side bounds.
///
/// Every bound evaluation needs the per-machine minima (heads/tails, and the
/// remaining load for [`lb1::OneMachineBound`]) over the unscheduled jobs.
/// Allocating them per call dominates the cost of bounding small batches, so
/// callers that bound many sub-problems — the off-load engine's fast-forward
/// path, the serial solver — hold one `BoundScratch` and pass it to the
/// `*_with` bound entry points. The buffers are (re)sized and reset on every
/// use, so one scratch can serve instances of different machine counts; the
/// convenience entry points without an explicit scratch fall back to a
/// thread-local one and stay allocation-free after the first call.
#[derive(Debug, Default)]
pub struct BoundScratch {
    pub(crate) min_head: Vec<Time>,
    pub(crate) min_tail: Vec<Time>,
    pub(crate) load: Vec<Time>,
}

impl BoundScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets and returns the head/tail minima buffers sized for `m`
    /// machines, initialised to `Time::MAX`.
    pub(crate) fn heads_tails(&mut self, m: usize) -> (&mut [Time], &mut [Time]) {
        reset(&mut self.min_head, m, Time::MAX);
        reset(&mut self.min_tail, m, Time::MAX);
        (&mut self.min_head, &mut self.min_tail)
    }

    /// Like [`Self::heads_tails`] plus the per-machine load buffer reset to
    /// zero (the one-machine bound's accumulator).
    pub(crate) fn heads_tails_load(&mut self, m: usize) -> (&mut [Time], &mut [Time], &mut [Time]) {
        reset(&mut self.min_head, m, Time::MAX);
        reset(&mut self.min_tail, m, Time::MAX);
        reset(&mut self.load, m, 0);
        (&mut self.min_head, &mut self.min_tail, &mut self.load)
    }
}

fn reset(buf: &mut Vec<Time>, m: usize, value: Time) {
    buf.clear();
    buf.resize(m, value);
}

thread_local! {
    static THREAD_SCRATCH: RefCell<BoundScratch> = RefCell::new(BoundScratch::new());
}

/// Runs `f` with the thread-local scratch (fresh fallback if re-entered).
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut BoundScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut BoundScratch::new()),
    })
}

/// A lower bound on the best makespan reachable from a partial schedule.
///
/// Implementations must be thread-safe: the multi-core baseline evaluates
/// bounds from several worker threads concurrently.
pub trait LowerBound: Send + Sync {
    /// Lower bound on the makespan of every completion of `schedule`.
    ///
    /// For a complete schedule the bound must equal its makespan exactly.
    fn bound(&self, schedule: &PartialSchedule<'_>) -> Time;

    /// Short human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Blanket implementation so `&B`, `Box<B>` and `Arc<B>` can be passed where
/// a bound is expected.
impl<B: LowerBound + ?Sized> LowerBound for &B {
    fn bound(&self, schedule: &PartialSchedule<'_>) -> Time {
        (**self).bound(schedule)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<B: LowerBound + ?Sized> LowerBound for std::sync::Arc<B> {
    fn bound(&self, schedule: &PartialSchedule<'_>) -> Time {
        (**self).bound(schedule)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<B: LowerBound + ?Sized> LowerBound for Box<B> {
    fn bound(&self, schedule: &PartialSchedule<'_>) -> Time {
        (**self).bound(schedule)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}
