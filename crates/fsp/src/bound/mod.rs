//! Lower bounds for the permutation Flow-Shop problem.
//!
//! The efficiency of a B&B solver depends critically on its lower-bound
//! function. The paper uses the two-machine relaxation bound of
//! Lageweg, Lenstra and Rinnooy Kan (1978), built on Johnson's algorithm
//! (1954); its data structures and pseudo-code are reproduced in Table I and
//! Figure 2 of the paper and implemented in [`data`] and [`johnson_lb`].
//!
//! A cheaper single-machine bound ([`lb1`]) is provided for ablation studies
//! (bound quality vs bound cost), and [`counts`] models the memory-access
//! complexities of Table I, which drive the GPU data-placement decision.

pub mod counts;
pub mod data;
pub mod johnson_lb;
pub mod lb1;

use crate::schedule::PartialSchedule;
use crate::Time;

/// A lower bound on the best makespan reachable from a partial schedule.
///
/// Implementations must be thread-safe: the multi-core baseline evaluates
/// bounds from several worker threads concurrently.
pub trait LowerBound: Send + Sync {
    /// Lower bound on the makespan of every completion of `schedule`.
    ///
    /// For a complete schedule the bound must equal its makespan exactly.
    fn bound(&self, schedule: &PartialSchedule<'_>) -> Time;

    /// Short human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Blanket implementation so `&B`, `Box<B>` and `Arc<B>` can be passed where
/// a bound is expected.
impl<B: LowerBound + ?Sized> LowerBound for &B {
    fn bound(&self, schedule: &PartialSchedule<'_>) -> Time {
        (**self).bound(schedule)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<B: LowerBound + ?Sized> LowerBound for std::sync::Arc<B> {
    fn bound(&self, schedule: &PartialSchedule<'_>) -> Time {
        (**self).bound(schedule)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<B: LowerBound + ?Sized> LowerBound for Box<B> {
    fn bound(&self, schedule: &PartialSchedule<'_>) -> Time {
        (**self).bound(schedule)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}
