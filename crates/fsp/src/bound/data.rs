//! The six data structures of the lower-bound algorithm (Table I of the
//! paper).
//!
//! | Matrix | Meaning | Size |
//! |--------|---------|------|
//! | `PTM`  | processing times `p[j][k]` | `n × m` |
//! | `LM`   | lag of job `j` for machine pair `(k,l)` | `n × m(m−1)/2` |
//! | `JM`   | Johnson order (with lags) of the jobs for each machine pair | `n × m(m−1)/2` |
//! | `RM`   | head of job `j` before machine `k` (earliest start) | `n × m` |
//! | `QM`   | tail of job `j` after machine `k` | `n × m` |
//! | `MM`   | the machine pairs `(k,l)`, `k < l` | `m(m−1)/2 × 2` |
//!
//! All matrices are computed **once per instance** on the host and are
//! read-only afterwards, which is what makes the GPU off-load of the paper
//! possible: the per-sub-problem payload is only the scheduled prefix.
//!
//! Note on `RM`/`QM`: the paper's Table I lists them with size `m`; its
//! Figure 2 pseudo-code however indexes them per job (`RM[M1][j]`). We follow
//! the pseudo-code and store them as `n × m` head/tail matrices — the
//! qualitative conclusion of the placement analysis (they are small and
//! rarely accessed compared to `PTM`/`JM`/`LM`) is unchanged; see
//! [`super::counts`].
//!
//! Everything is stored flat in `Vec<u32>` so the GPU off-load engine can
//! copy the buffers to (simulated) device memory without re-marshalling.

use crate::instance::Instance;
use crate::johnson::{johnson_order_with_lags, lag};
use crate::{Job, Machine, Time};

/// Pre-computed, read-only data needed by the Johnson-based lower bound.
#[derive(Debug, Clone)]
pub struct BoundData {
    jobs: usize,
    machines: usize,
    num_pairs: usize,
    /// `n × m`, job-major: `ptm[j * m + k]`.
    ptm: Vec<Time>,
    /// `n × P`, job-major: `lm[j * P + pair]` where `P = m(m-1)/2`.
    lm: Vec<Time>,
    /// `n × P`, position-major: `jm[pos * P + pair]` is the job in position
    /// `pos` of the Johnson order of machine pair `pair`.
    jm: Vec<u32>,
    /// `n × m`, job-major: `rm[j * m + k]` = sum of `p[j][h]` for `h < k`.
    rm: Vec<Time>,
    /// `n × m`, job-major: `qm[j * m + k]` = sum of `p[j][h]` for `h > k`.
    qm: Vec<Time>,
    /// `P × 2`: `mm[pair * 2]` and `mm[pair * 2 + 1]` are the two machines of
    /// the pair, with `mm[2p] < mm[2p+1]`.
    mm: Vec<u32>,
}

impl BoundData {
    /// Pre-computes all six matrices for `inst`.
    pub fn new(inst: &Instance) -> Self {
        let n = inst.jobs();
        let m = inst.machines();
        let num_pairs = m * (m - 1) / 2;

        let ptm = inst.raw().to_vec();

        // Machine pairs in the canonical order used everywhere: (0,1), (0,2),
        // …, (0,m-1), (1,2), …, (m-2,m-1).
        let mut mm = Vec::with_capacity(num_pairs * 2);
        for k in 0..m {
            for l in (k + 1)..m {
                mm.push(k as u32);
                mm.push(l as u32);
            }
        }

        // Lags.
        let mut lm = vec![0 as Time; n * num_pairs];
        for j in 0..n {
            for (pair, chunk) in mm.chunks_exact(2).enumerate() {
                let (k, l) = (chunk[0] as usize, chunk[1] as usize);
                lm[j * num_pairs + pair] = lag(inst, j, k, l);
            }
        }

        // Johnson orders per pair.
        let mut jm = vec![0u32; n * num_pairs];
        for (pair, chunk) in mm.chunks_exact(2).enumerate() {
            let (k, l) = (chunk[0] as usize, chunk[1] as usize);
            let order = johnson_order_with_lags(inst, k, l);
            for (pos, &job) in order.iter().enumerate() {
                jm[pos * num_pairs + pair] = job as u32;
            }
        }

        // Heads and tails.
        let mut rm = vec![0 as Time; n * m];
        let mut qm = vec![0 as Time; n * m];
        for j in 0..n {
            let mut head = 0;
            for k in 0..m {
                rm[j * m + k] = head;
                head += inst.pt(j, k);
            }
            let mut tail = 0;
            for k in (0..m).rev() {
                qm[j * m + k] = tail;
                tail += inst.pt(j, k);
            }
        }

        Self {
            jobs: n,
            machines: m,
            num_pairs,
            ptm,
            lm,
            jm,
            rm,
            qm,
            mm,
        }
    }

    /// Number of jobs `n`.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Number of machines `m`.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of machine pairs `m(m−1)/2`.
    pub fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    /// Processing time of `job` on `machine` (a `PTM` read).
    #[inline]
    pub fn ptm(&self, job: Job, machine: Machine) -> Time {
        self.ptm[job * self.machines + machine]
    }

    /// Lag of `job` for machine pair `pair` (an `LM` read).
    #[inline]
    pub fn lm(&self, job: Job, pair: usize) -> Time {
        self.lm[job * self.num_pairs + pair]
    }

    /// Job at position `pos` of the Johnson order of `pair` (a `JM` read).
    #[inline]
    pub fn jm(&self, pos: usize, pair: usize) -> Job {
        self.jm[pos * self.num_pairs + pair] as Job
    }

    /// Head (earliest start) of `job` before `machine` (an `RM` read).
    #[inline]
    pub fn rm(&self, job: Job, machine: Machine) -> Time {
        self.rm[job * self.machines + machine]
    }

    /// Tail of `job` after `machine` (a `QM` read).
    #[inline]
    pub fn qm(&self, job: Job, machine: Machine) -> Time {
        self.qm[job * self.machines + machine]
    }

    /// The two machines of `pair` (an `MM` read).
    #[inline]
    pub fn pair(&self, pair: usize) -> (Machine, Machine) {
        (
            self.mm[pair * 2] as Machine,
            self.mm[pair * 2 + 1] as Machine,
        )
    }

    /// Raw flat `PTM` buffer (`n × m` `u32`s) — for device upload.
    pub fn ptm_raw(&self) -> &[Time] {
        &self.ptm
    }

    /// Raw flat `LM` buffer (`n × m(m−1)/2` `u32`s) — for device upload.
    pub fn lm_raw(&self) -> &[Time] {
        &self.lm
    }

    /// Raw flat `JM` buffer (`n × m(m−1)/2` `u32`s) — for device upload.
    pub fn jm_raw(&self) -> &[u32] {
        &self.jm
    }

    /// Raw flat `RM` buffer (`n × m` `u32`s) — for device upload.
    pub fn rm_raw(&self) -> &[Time] {
        &self.rm
    }

    /// Raw flat `QM` buffer (`n × m` `u32`s) — for device upload.
    pub fn qm_raw(&self) -> &[Time] {
        &self.qm
    }

    /// Raw flat `MM` buffer (`m(m−1)/2 × 2` `u32`s) — for device upload.
    pub fn mm_raw(&self) -> &[u32] {
        &self.mm
    }

    /// Size in bytes of each matrix, in the order
    /// `(PTM, LM, JM, RM, QM, MM)` — the inputs of the placement analysis.
    pub fn sizes_bytes(&self) -> [usize; 6] {
        [
            self.ptm.len() * 4,
            self.lm.len() * 4,
            self.jm.len() * 4,
            self.rm.len() * 4,
            self.qm.len() * 4,
            self.mm.len() * 4,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taillard::generate;

    #[test]
    fn shapes_match_table_one() {
        let inst = generate("t", 20, 20, 77);
        let data = BoundData::new(&inst);
        assert_eq!(data.jobs(), 20);
        assert_eq!(data.machines(), 20);
        assert_eq!(data.num_pairs(), 190);
        assert_eq!(data.ptm_raw().len(), 20 * 20);
        assert_eq!(data.lm_raw().len(), 20 * 190);
        assert_eq!(data.jm_raw().len(), 20 * 190);
        assert_eq!(data.rm_raw().len(), 20 * 20);
        assert_eq!(data.qm_raw().len(), 20 * 20);
        assert_eq!(data.mm_raw().len(), 190 * 2);
    }

    #[test]
    fn paper_sizes_for_200x20() {
        // Section IV-B: for n = 200, JM and LM are 38 KB each and PTM 4 KB
        // (with 1-byte processing times in the paper; we store u32 so the
        // element counts are what must match: 200*190 = 38_000 and 200*20 =
        // 4_000).
        let inst = generate("t", 200, 20, 1);
        let data = BoundData::new(&inst);
        assert_eq!(data.jm_raw().len(), 38_000);
        assert_eq!(data.lm_raw().len(), 38_000);
        assert_eq!(data.ptm_raw().len(), 4_000);
    }

    #[test]
    fn pairs_are_canonical_and_complete() {
        let inst = generate("t", 5, 6, 3);
        let data = BoundData::new(&inst);
        assert_eq!(data.num_pairs(), 15);
        let mut seen = std::collections::HashSet::new();
        for p in 0..data.num_pairs() {
            let (k, l) = data.pair(p);
            assert!(k < l && l < 6);
            assert!(seen.insert((k, l)));
        }
        assert_eq!(data.pair(0), (0, 1));
        assert_eq!(data.pair(data.num_pairs() - 1), (4, 5));
    }

    #[test]
    fn ptm_matches_instance() {
        let inst = generate("t", 10, 5, 9);
        let data = BoundData::new(&inst);
        for j in 0..10 {
            for k in 0..5 {
                assert_eq!(data.ptm(j, k), inst.pt(j, k));
            }
        }
    }

    #[test]
    fn lags_heads_tails_are_consistent() {
        let inst = generate("t", 8, 4, 21);
        let data = BoundData::new(&inst);
        for j in 0..8 {
            // head + p + tail == total over machines
            for k in 0..4 {
                assert_eq!(
                    data.rm(j, k) + inst.pt(j, k) + data.qm(j, k),
                    inst.job_total(j)
                );
            }
            // lag(k,l) = head(l) - head(k) - p(k)
            for p in 0..data.num_pairs() {
                let (k, l) = data.pair(p);
                assert_eq!(data.lm(j, p), data.rm(j, l) - data.rm(j, k) - inst.pt(j, k));
            }
        }
    }

    #[test]
    fn johnson_orders_are_permutations() {
        let inst = generate("t", 12, 6, 5);
        let data = BoundData::new(&inst);
        for p in 0..data.num_pairs() {
            let order: Vec<usize> = (0..12).map(|pos| data.jm(pos, p)).collect();
            assert!(crate::schedule::is_permutation(&order, 12));
        }
    }

    #[test]
    fn sizes_bytes_reports_all_six() {
        let inst = generate("t", 20, 20, 4);
        let data = BoundData::new(&inst);
        let sizes = data.sizes_bytes();
        assert_eq!(sizes[0], 20 * 20 * 4);
        assert_eq!(sizes[1], 20 * 190 * 4);
        assert_eq!(sizes[2], 20 * 190 * 4);
        assert_eq!(sizes[5], 190 * 2 * 4);
    }
}
