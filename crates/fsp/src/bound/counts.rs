//! Memory-access accounting for the lower-bound kernel — the quantitative
//! basis of the paper's data-placement decision (Table I).
//!
//! Two models are provided:
//!
//! * [`AccessCounts::paper_expected`] — the closed-form access counts the
//!   paper reports in Table I;
//! * [`AccessCounts::impl_expected`] — the exact counts of *this*
//!   implementation, which differ only for `RM`/`QM` (the paper lists them as
//!   `m`-sized vectors whereas the Figure 2 pseudo-code, and we, index them
//!   per job; both agree that they are negligible next to `PTM`/`JM`/`LM`).
//!
//! The instrumented bound
//! ([`super::johnson_lb::JohnsonLowerBound::bound_prefix_counted`]) is tested
//! against `impl_expected`, and the GPU simulator's traffic model consumes
//! these counts to price each memory space.

/// Number of reads of each of the six lower-bound matrices during one bound
/// evaluation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AccessCounts {
    /// Reads of the processing-time matrix `PTM`.
    pub ptm: u64,
    /// Reads of the lag matrix `LM`.
    pub lm: u64,
    /// Reads of the Johnson-order matrix `JM`.
    pub jm: u64,
    /// Reads of the head matrix `RM`.
    pub rm: u64,
    /// Reads of the tail matrix `QM`.
    pub qm: u64,
    /// Reads of the machine-pair table `MM`.
    pub mm: u64,
}

impl AccessCounts {
    /// Total number of matrix reads.
    pub fn total(&self) -> u64 {
        self.ptm + self.lm + self.jm + self.rm + self.qm + self.mm
    }

    /// Element-wise sum of two access-count records.
    pub fn add(&self, other: &AccessCounts) -> AccessCounts {
        AccessCounts {
            ptm: self.ptm + other.ptm,
            lm: self.lm + other.lm,
            jm: self.jm + other.jm,
            rm: self.rm + other.rm,
            qm: self.qm + other.qm,
            mm: self.mm + other.mm,
        }
    }

    /// The access counts reported in Table I of the paper for one bound
    /// evaluation on an `n × m` instance with `n_remaining` unscheduled jobs.
    pub fn paper_expected(n: usize, m: usize, n_remaining: usize) -> AccessCounts {
        let (n, m, np) = (n as u64, m as u64, n_remaining as u64);
        let pairs = m * (m - 1) / 2;
        AccessCounts {
            ptm: np * m * (m - 1),
            lm: np * pairs,
            jm: n * pairs,
            rm: m * (m - 1),
            qm: pairs,
            mm: m * (m - 1),
        }
    }

    /// The exact access counts of this crate's implementation
    /// ([`super::johnson_lb::JohnsonLowerBound`]) for one bound evaluation,
    /// assuming at least one job remains unscheduled.
    pub fn impl_expected(n: usize, m: usize, n_remaining: usize) -> AccessCounts {
        let (n, m, np) = (n as u64, m as u64, n_remaining as u64);
        let pairs = m * (m - 1) / 2;
        AccessCounts {
            ptm: np * m * (m - 1), // two PTM reads per remaining job per pair
            lm: np * pairs,
            jm: n * pairs,
            rm: np * m, // per-machine minima computed once per sub-problem
            qm: np * m,
            mm: m * (m - 1),
        }
    }

    /// Per-matrix sizes (element counts) as analysed in Table I, in the order
    /// `(PTM, LM, JM, RM, QM, MM)`, with `RM`/`QM` following the Figure 2
    /// per-job indexing used by this implementation.
    pub fn sizes(n: usize, m: usize) -> [usize; 6] {
        let pairs = m * (m - 1) / 2;
        [n * m, n * pairs, n * pairs, n * m, n * m, pairs * 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::johnson_lb::JohnsonLowerBound;
    use crate::schedule::PartialSchedule;
    use crate::taillard::generate;

    #[test]
    fn instrumented_counts_match_impl_model() {
        for (n, m, prefix_len) in [(10usize, 5usize, 0usize), (12, 6, 3), (20, 20, 5)] {
            let inst = generate(format!("c{n}x{m}"), n, m, 1000 + (n * m) as i64);
            let lb = JohnsonLowerBound::new(&inst);
            let prefix: Vec<usize> = (0..prefix_len).collect();
            let sched = PartialSchedule::from_prefix(&inst, &prefix);
            let mut scheduled = vec![false; n];
            for &j in &prefix {
                scheduled[j] = true;
            }
            let (_, counts) = lb.bound_prefix_counted(sched.front(), &scheduled);
            let expected = AccessCounts::impl_expected(n, m, n - prefix_len);
            assert_eq!(
                counts, expected,
                "mismatch for {n}x{m}, prefix {prefix_len}"
            );
        }
    }

    #[test]
    fn paper_and_impl_agree_on_the_dominant_structures() {
        let paper = AccessCounts::paper_expected(200, 20, 190);
        let imp = AccessCounts::impl_expected(200, 20, 190);
        assert_eq!(paper.ptm, imp.ptm);
        assert_eq!(paper.lm, imp.lm);
        assert_eq!(paper.jm, imp.jm);
        assert_eq!(paper.mm, imp.mm);
        // PTM and JM dominate in both models — the basis of the shared-memory
        // placement recommendation.
        assert!(imp.ptm > imp.rm && imp.ptm > imp.qm && imp.ptm > imp.mm);
        assert!(imp.jm > imp.rm && imp.jm > imp.qm && imp.jm > imp.mm);
    }

    #[test]
    fn table_one_formulas_for_200x20() {
        let c = AccessCounts::paper_expected(200, 20, 200);
        assert_eq!(c.ptm, 200 * 20 * 19);
        assert_eq!(c.lm, 200 * 190);
        assert_eq!(c.jm, 200 * 190);
        assert_eq!(c.rm, 20 * 19);
        assert_eq!(c.qm, 190);
        assert_eq!(c.mm, 20 * 19);
    }

    #[test]
    fn sizes_match_bound_data() {
        let inst = generate("s", 50, 20, 3);
        let data = crate::bound::data::BoundData::new(&inst);
        let sizes = AccessCounts::sizes(50, 20);
        let bytes = data.sizes_bytes();
        for i in 0..6 {
            assert_eq!(sizes[i] * 4, bytes[i]);
        }
    }

    #[test]
    fn totals_and_addition() {
        let a = AccessCounts {
            ptm: 1,
            lm: 2,
            jm: 3,
            rm: 4,
            qm: 5,
            mm: 6,
        };
        assert_eq!(a.total(), 21);
        let b = a.add(&a);
        assert_eq!(b.total(), 42);
        assert_eq!(b.ptm, 2);
    }
}
