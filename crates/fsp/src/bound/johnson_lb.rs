//! The Johnson-based two-machine-relaxation lower bound (Figure 2 of the
//! paper; Lageweg–Lenstra–Rinnooy Kan, 1978).
//!
//! For every machine pair `(k, l)` with `k < l` the remaining jobs are relaxed
//! to a two-machine problem with time lags; Johnson's rule with lags (the
//! pre-computed `JM` order) solves that relaxation exactly, and the largest
//! value over all pairs — augmented with machine-availability heads and
//! job tails — is a valid lower bound on the makespan of every completion of
//! the partial schedule.
//!
//! The structure of [`JohnsonLowerBound::bound_prefix`] mirrors the paper's
//! `computeLB` pseudo-code line by line so that the GPU kernel
//! (`gpu-bnb::kernel_lb`) and this reference implementation stay in lockstep;
//! an instrumented variant reports per-matrix access counts used to validate
//! the Table I complexity analysis.

use super::counts::AccessCounts;
use super::data::BoundData;
use super::{with_thread_scratch, BoundScratch, LowerBound};
use crate::schedule::PartialSchedule;
use crate::{Job, Time};

/// The full Johnson-based lower bound of the paper.
#[derive(Debug, Clone)]
pub struct JohnsonLowerBound {
    data: BoundData,
}

impl JohnsonLowerBound {
    /// Pre-computes the six bound matrices for `inst`.
    pub fn new(inst: &crate::instance::Instance) -> Self {
        Self {
            data: BoundData::new(inst),
        }
    }

    /// Builds the bound from already-computed matrices.
    pub fn from_data(data: BoundData) -> Self {
        Self { data }
    }

    /// The pre-computed matrices (shared with the GPU off-load engine).
    pub fn data(&self) -> &BoundData {
        &self.data
    }

    /// Computes the lower bound for a sub-problem described by its scheduled
    /// prefix `front` (per-machine completion times) and the `scheduled`
    /// membership array.
    ///
    /// This is the host-side reference of the GPU kernel: same algorithm,
    /// same data structures. Uses the thread-local [`BoundScratch`]; batch
    /// callers should prefer [`Self::bound_prefix_with`].
    pub fn bound_prefix(&self, front: &[Time], scheduled: &[bool]) -> Time {
        with_thread_scratch(|s| self.bound_prefix_impl(front, |j| scheduled[j], None, s))
    }

    /// Like [`Self::bound_prefix`] but with scheduled-set membership supplied
    /// as a predicate (avoids materialising a `Vec<bool>` for callers that
    /// keep the set as a bitset, such as the B&B node type).
    pub fn bound_prefix_fn(&self, front: &[Time], is_scheduled: impl Fn(Job) -> bool) -> Time {
        with_thread_scratch(|s| self.bound_prefix_impl(front, is_scheduled, None, s))
    }

    /// Like [`Self::bound_prefix`] with an explicit, caller-owned scratch —
    /// the batch entry point: allocate the scratch once, reuse it for every
    /// sub-problem of every pool.
    pub fn bound_prefix_with(
        &self,
        scratch: &mut BoundScratch,
        front: &[Time],
        scheduled: &[bool],
    ) -> Time {
        self.bound_prefix_impl(front, |j| scheduled[j], None, scratch)
    }

    /// Predicate variant of [`Self::bound_prefix_with`].
    pub fn bound_prefix_fn_with(
        &self,
        scratch: &mut BoundScratch,
        front: &[Time],
        is_scheduled: impl Fn(Job) -> bool,
    ) -> Time {
        self.bound_prefix_impl(front, is_scheduled, None, scratch)
    }

    /// Same as [`Self::bound_prefix`] but records how many times each of the
    /// six matrices is read (used to validate Table I).
    pub fn bound_prefix_counted(&self, front: &[Time], scheduled: &[bool]) -> (Time, AccessCounts) {
        let mut counts = AccessCounts::default();
        let lb = with_thread_scratch(|s| {
            self.bound_prefix_impl(front, |j| scheduled[j], Some(&mut counts), s)
        });
        (lb, counts)
    }

    fn bound_prefix_impl(
        &self,
        front: &[Time],
        scheduled: impl Fn(Job) -> bool,
        mut counts: Option<&mut AccessCounts>,
        scratch: &mut BoundScratch,
    ) -> Time {
        let data = &self.data;
        let n = data.jobs();
        let m = data.machines();
        debug_assert_eq!(front.len(), m);

        macro_rules! tally {
            ($field:ident, $amount:expr) => {
                if let Some(c) = counts.as_deref_mut() {
                    c.$field += $amount;
                }
            };
        }

        // Per-machine earliest start (head) and smallest tail over the
        // remaining jobs. Computed once per sub-problem; reads RM and QM
        // n' × m times in total.
        let (min_head, min_tail) = scratch.heads_tails(m);
        let mut remaining = 0usize;
        for job in 0..n {
            if scheduled(job) {
                continue;
            }
            remaining += 1;
            for k in 0..m {
                let h = data.rm(job, k);
                tally!(rm, 1);
                if h < min_head[k] {
                    min_head[k] = h;
                }
                let t = data.qm(job, k);
                tally!(qm, 1);
                if t < min_tail[k] {
                    min_tail[k] = t;
                }
            }
        }

        // A completed schedule: the bound is exactly the prefix makespan.
        if remaining == 0 {
            return front[m - 1];
        }

        let mut lb: Time = 0;
        for pair in 0..data.num_pairs() {
            let (m1, m2) = data.pair(pair);
            tally!(mm, 2);

            // Machine availability: the prefix keeps machine k busy until
            // front[k]; independently no remaining job can reach machine k
            // before its smallest head.
            let mut time_on_m1 = front[m1].max(min_head[m1]);
            let mut time_on_m2 = front[m2].max(min_head[m2]);

            // Johnson order with lags over the remaining jobs (lines 8-17 of
            // the paper's Figure 2).
            for pos in 0..n {
                let job = data.jm(pos, pair);
                tally!(jm, 1);
                if scheduled(job) {
                    continue;
                }
                time_on_m1 += data.ptm(job, m1);
                tally!(ptm, 1);
                let lag = data.lm(job, pair);
                tally!(lm, 1);
                let ready_on_m2 = time_on_m1 + lag;
                let p2 = data.ptm(job, m2);
                tally!(ptm, 1);
                if time_on_m2 > ready_on_m2 {
                    time_on_m2 += p2;
                } else {
                    time_on_m2 = ready_on_m2 + p2;
                }
            }

            // Line 18: add the smallest remaining tail after machine m2.
            let bound_for_pair = time_on_m2 + min_tail[m2];
            if bound_for_pair > lb {
                lb = bound_for_pair;
            }
        }
        lb
    }

    /// Convenience: bound of a sub-problem given as a prefix of jobs.
    pub fn bound_of_prefix_jobs(&self, inst: &crate::Instance, prefix: &[Job]) -> Time {
        let sched = PartialSchedule::from_prefix(inst, prefix);
        self.bound(&sched)
    }
}

impl LowerBound for JohnsonLowerBound {
    fn bound(&self, schedule: &PartialSchedule<'_>) -> Time {
        let n = self.data.jobs();
        let mut scheduled = vec![false; n];
        for &j in schedule.prefix() {
            scheduled[j] = true;
        }
        self.bound_prefix(schedule.front(), &scheduled)
    }

    fn name(&self) -> &'static str {
        "johnson-lb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_optimal;
    use crate::schedule::{makespan, PartialSchedule};
    use crate::taillard::generate;

    fn bound_of(inst: &crate::Instance, prefix: &[usize]) -> Time {
        let lb = JohnsonLowerBound::new(inst);
        let sched = PartialSchedule::from_prefix(inst, prefix);
        lb.bound(&sched)
    }

    #[test]
    fn root_bound_never_exceeds_optimum() {
        for seed in 1..=12 {
            let inst = generate(format!("t{seed}"), 7, 4, seed * 13);
            let (_, opt) = brute_force_optimal(&inst);
            let root = bound_of(&inst, &[]);
            assert!(
                root <= opt,
                "root LB {root} exceeds optimum {opt} (seed {seed})"
            );
        }
    }

    #[test]
    fn bound_of_any_prefix_never_exceeds_best_completion() {
        // For every 1-job and 2-job prefix of a tiny instance, the bound must
        // not exceed the best completion reachable from that prefix.
        let inst = generate("t", 6, 3, 991);
        let lb = JohnsonLowerBound::new(&inst);
        let n = inst.jobs();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let prefix = vec![a, b];
                let sched = PartialSchedule::from_prefix(&inst, &prefix);
                let bound = lb.bound(&sched);
                // best completion by brute force over remaining jobs
                let mut best = Time::MAX;
                let remaining: Vec<usize> = (0..n).filter(|j| !prefix.contains(j)).collect();
                permute(&remaining, &mut |rest| {
                    let mut full = prefix.clone();
                    full.extend_from_slice(rest);
                    best = best.min(makespan(&inst, &full));
                });
                assert!(
                    bound <= best,
                    "LB {bound} exceeds best completion {best} for prefix {prefix:?}"
                );
            }
        }
    }

    #[test]
    fn bound_of_complete_schedule_equals_makespan() {
        let inst = generate("t", 9, 5, 17);
        let lb = JohnsonLowerBound::new(&inst);
        let perm: Vec<usize> = (0..9).collect();
        let sched = PartialSchedule::from_prefix(&inst, &perm);
        assert_eq!(lb.bound(&sched), makespan(&inst, &perm));
    }

    #[test]
    fn bound_is_monotone_along_a_branch() {
        let inst = generate("t", 10, 6, 303);
        let lb = JohnsonLowerBound::new(&inst);
        let mut sched = PartialSchedule::new(&inst);
        let mut prev = lb.bound(&sched);
        for job in [3, 7, 1, 9, 0, 5] {
            sched.push(job);
            let cur = lb.bound(&sched);
            assert!(
                cur >= prev,
                "bound decreased from {prev} to {cur} after scheduling {job}"
            );
            prev = cur;
        }
    }

    #[test]
    fn bound_dominates_machine_load_bound_at_root() {
        // The two-machine relaxation is at least as strong as the trivial
        // single-machine load bound on most instances; we only require it to
        // be a valid bound here, and at least as large as the largest job.
        let inst = generate("t", 20, 10, 88);
        let root = bound_of(&inst, &[]);
        let longest_job = (0..20).map(|j| inst.job_total(j)).max().unwrap();
        assert!(root >= longest_job);
    }

    #[test]
    fn two_machine_root_bound_is_exact() {
        // With m = 2 there is a single machine pair and no lags: the root
        // bound equals Johnson's optimal makespan.
        for seed in 1..=6 {
            let inst = generate(format!("t{seed}"), 8, 2, seed * 7 + 1);
            let (_, opt) = crate::johnson::solve_two_machine(&inst);
            assert_eq!(bound_of(&inst, &[]), opt);
        }
    }

    #[test]
    fn counted_variant_matches_uncounted() {
        let inst = generate("t", 12, 5, 5);
        let lb = JohnsonLowerBound::new(&inst);
        let sched = PartialSchedule::from_prefix(&inst, &[2, 5]);
        let mut scheduled = vec![false; 12];
        scheduled[2] = true;
        scheduled[5] = true;
        let plain = lb.bound_prefix(sched.front(), &scheduled);
        let (counted, counts) = lb.bound_prefix_counted(sched.front(), &scheduled);
        assert_eq!(plain, counted);
        assert!(counts.ptm > 0 && counts.jm > 0 && counts.lm > 0);
    }

    #[test]
    fn name_is_stable() {
        let inst = generate("t", 4, 3, 2);
        assert_eq!(JohnsonLowerBound::new(&inst).name(), "johnson-lb");
    }

    /// Tiny permutation helper for the completion check above.
    fn permute(items: &[usize], f: &mut impl FnMut(&[usize])) {
        let mut v = items.to_vec();
        let n = v.len();
        let mut c = vec![0usize; n];
        f(&v);
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    v.swap(0, i);
                } else {
                    v.swap(c[i], i);
                }
                f(&v);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }
}
