//! A cheap single-machine lower bound, used as the ablation baseline for
//! "bound quality vs bound cost" experiments.
//!
//! For every machine `k` the remaining work on `k` plus the earliest time any
//! remaining job can reach `k` plus the smallest tail after `k` is a lower
//! bound on the makespan. It costs `O(n·m)` per node (versus
//! `O(m²·n)` for the Johnson bound) but prunes far less.

use super::data::BoundData;
use super::{with_thread_scratch, BoundScratch, LowerBound};
use crate::schedule::PartialSchedule;
use crate::{Job, Time};

/// The single-machine (machine-load) lower bound.
#[derive(Debug, Clone)]
pub struct OneMachineBound {
    data: BoundData,
}

impl OneMachineBound {
    /// Pre-computes the head/tail matrices for `inst`.
    pub fn new(inst: &crate::instance::Instance) -> Self {
        Self {
            data: BoundData::new(inst),
        }
    }

    /// Builds the bound from already-computed matrices.
    pub fn from_data(data: BoundData) -> Self {
        Self { data }
    }

    /// Bound of a sub-problem given its per-machine front and scheduled set.
    /// Uses the thread-local [`BoundScratch`]; batch callers should prefer
    /// [`Self::bound_prefix_with`].
    pub fn bound_prefix(&self, front: &[Time], scheduled: &[bool]) -> Time {
        with_thread_scratch(|s| self.bound_prefix_impl(front, |j| scheduled[j], s))
    }

    /// Like [`Self::bound_prefix`] but with scheduled-set membership supplied
    /// as a predicate (for callers that keep the set as a bitset).
    pub fn bound_prefix_fn(&self, front: &[Time], is_scheduled: impl Fn(Job) -> bool) -> Time {
        with_thread_scratch(|s| self.bound_prefix_impl(front, is_scheduled, s))
    }

    /// Like [`Self::bound_prefix`] with an explicit, caller-owned scratch.
    pub fn bound_prefix_with(
        &self,
        scratch: &mut BoundScratch,
        front: &[Time],
        scheduled: &[bool],
    ) -> Time {
        self.bound_prefix_impl(front, |j| scheduled[j], scratch)
    }

    fn bound_prefix_impl(
        &self,
        front: &[Time],
        scheduled: impl Fn(Job) -> bool,
        scratch: &mut BoundScratch,
    ) -> Time {
        let data = &self.data;
        let n = data.jobs();
        let m = data.machines();

        let mut remaining = 0usize;
        let (min_head, min_tail, load) = scratch.heads_tails_load(m);
        for job in 0..n {
            if scheduled(job) {
                continue;
            }
            remaining += 1;
            for k in 0..m {
                load[k] += data.ptm(job, k);
                min_head[k] = min_head[k].min(data.rm(job, k));
                min_tail[k] = min_tail[k].min(data.qm(job, k));
            }
        }
        if remaining == 0 {
            return front[m - 1];
        }

        (0..m)
            .map(|k| front[k].max(min_head[k]) + load[k] + min_tail[k])
            .max()
            .expect("at least one machine")
    }
}

impl LowerBound for OneMachineBound {
    fn bound(&self, schedule: &PartialSchedule<'_>) -> Time {
        let n = self.data.jobs();
        let mut scheduled = vec![false; n];
        for &j in schedule.prefix() {
            scheduled[j] = true;
        }
        self.bound_prefix(schedule.front(), &scheduled)
    }

    fn name(&self) -> &'static str {
        "one-machine-lb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::johnson_lb::JohnsonLowerBound;
    use crate::brute::brute_force_optimal;
    use crate::schedule::{makespan, PartialSchedule};
    use crate::taillard::generate;

    #[test]
    fn never_exceeds_optimum_at_root() {
        for seed in 1..=10 {
            let inst = generate(format!("t{seed}"), 7, 4, seed * 29);
            let (_, opt) = brute_force_optimal(&inst);
            let lb = OneMachineBound::new(&inst);
            let root = lb.bound(&PartialSchedule::new(&inst));
            assert!(root <= opt, "LB1 {root} > optimum {opt} (seed {seed})");
        }
    }

    #[test]
    fn complete_schedule_is_exact() {
        let inst = generate("t", 8, 5, 41);
        let lb = OneMachineBound::new(&inst);
        let perm: Vec<usize> = (0..8).rev().collect();
        let sched = PartialSchedule::from_prefix(&inst, &perm);
        assert_eq!(lb.bound(&sched), makespan(&inst, &perm));
    }

    #[test]
    fn johnson_bound_dominates_one_machine_bound() {
        // The two-machine relaxation is provably at least as tight as the
        // one-machine relaxation at every node.
        let inst = generate("t", 12, 6, 13);
        let lb1 = OneMachineBound::new(&inst);
        let lb2 = JohnsonLowerBound::new(&inst);
        for prefix in [vec![], vec![3], vec![5, 1], vec![0, 7, 9, 2]] {
            let sched = PartialSchedule::from_prefix(&inst, &prefix);
            assert!(
                lb2.bound(&sched) >= lb1.bound(&sched),
                "Johnson LB weaker than LB1 for prefix {prefix:?}"
            );
        }
    }

    #[test]
    fn monotone_along_branch() {
        let inst = generate("t", 10, 5, 919);
        let lb = OneMachineBound::new(&inst);
        let mut sched = PartialSchedule::new(&inst);
        let mut prev = lb.bound(&sched);
        for job in [2, 8, 4, 0] {
            sched.push(job);
            let cur = lb.bound(&sched);
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    fn name_is_stable() {
        let inst = generate("t", 4, 3, 2);
        assert_eq!(OneMachineBound::new(&inst).name(), "one-machine-lb");
    }
}
