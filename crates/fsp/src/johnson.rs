//! Johnson's algorithm for the two-machine flow shop, and Johnson's rule with
//! time lags — the building block of the paper's lower bound.
//!
//! For `m = 2` the permutation flow shop is solved exactly in `O(n log n)` by
//! Johnson's rule (S.M. Johnson, 1954): schedule first, in increasing order of
//! `p1`, the jobs with `p1 < p2`; then, in decreasing order of `p2`, the jobs
//! with `p1 ≥ p2`.
//!
//! The Lageweg–Lenstra–Rinnooy Kan bound relaxes an `m`-machine instance to a
//! two-machine instance for every machine pair `(k, l)` with `k < l`, where a
//! job `j` must wait at least its *lag* (the sum of its processing times on
//! the machines strictly between `k` and `l`) between the two machines.
//! Johnson's rule applied to the transformed times `(p_jk + lag_j,
//! lag_j + p_jl)` gives the optimal order of that relaxed problem; this order
//! is what the paper pre-computes into the `JM` matrix.

use crate::instance::Instance;
use crate::{Job, Machine, Time};

/// Job order produced by Johnson's rule for two arrays of processing times
/// `a` (first machine) and `b` (second machine).
///
/// Ties are broken by job index so the order is deterministic.
pub fn johnson_order(a: &[Time], b: &[Time]) -> Vec<Job> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut first: Vec<Job> = (0..n).filter(|&j| a[j] < b[j]).collect();
    let mut second: Vec<Job> = (0..n).filter(|&j| a[j] >= b[j]).collect();
    first.sort_by_key(|&j| (a[j], j));
    second.sort_by_key(|&j| (std::cmp::Reverse(b[j]), j));
    first.extend(second);
    first
}

/// Makespan of the two-machine flow shop when the jobs are processed in
/// `order` with processing times `a` on the first machine and `b` on the
/// second.
pub fn two_machine_makespan(a: &[Time], b: &[Time], order: &[Job]) -> Time {
    let mut t1: Time = 0;
    let mut t2: Time = 0;
    for &j in order {
        t1 += a[j];
        t2 = t2.max(t1) + b[j];
    }
    t2
}

/// Solves the two-machine flow shop exactly: returns the optimal permutation
/// and its makespan.
///
/// # Panics
///
/// Panics if `inst` does not have exactly two machines.
pub fn solve_two_machine(inst: &Instance) -> (Vec<Job>, Time) {
    assert_eq!(
        inst.machines(),
        2,
        "Johnson's algorithm applies to 2-machine instances"
    );
    let n = inst.jobs();
    let a: Vec<Time> = (0..n).map(|j| inst.pt(j, 0)).collect();
    let b: Vec<Time> = (0..n).map(|j| inst.pt(j, 1)).collect();
    let order = johnson_order(&a, &b);
    let cmax = two_machine_makespan(&a, &b, &order);
    (order, cmax)
}

/// The lag of `job` between machines `k` and `l` (with `k < l`): the sum of
/// its processing times on every machine strictly between the two.
pub fn lag(inst: &Instance, job: Job, k: Machine, l: Machine) -> Time {
    debug_assert!(k < l && l < inst.machines());
    (k + 1..l).map(|h| inst.pt(job, h)).sum()
}

/// Johnson's rule with lags for the machine pair `(k, l)`: the optimal order
/// of the relaxed two-machine problem where job `j` takes `p_jk + lag_j` on
/// the first machine and `lag_j + p_jl` on the second.
pub fn johnson_order_with_lags(inst: &Instance, k: Machine, l: Machine) -> Vec<Job> {
    let n = inst.jobs();
    let a: Vec<Time> = (0..n).map(|j| inst.pt(j, k) + lag(inst, j, k, l)).collect();
    let b: Vec<Time> = (0..n).map(|j| lag(inst, j, k, l) + inst.pt(j, l)).collect();
    johnson_order(&a, &b)
}

/// Two-machine makespan *with lags* of the given job order for machine pair
/// `(k, l)`, starting the first machine at `release_k` and the second at
/// `release_l`, considering only the jobs for which `include` returns true.
///
/// This is exactly the inner loop of the paper's Figure 2 pseudo-code.
pub fn two_machine_makespan_with_lags(
    inst: &Instance,
    order: &[Job],
    k: Machine,
    l: Machine,
    release_k: Time,
    release_l: Time,
    include: impl Fn(Job) -> bool,
) -> Time {
    let mut time_on_m1 = release_k;
    let mut time_on_m2 = release_l;
    for &job in order {
        if !include(job) {
            continue;
        }
        time_on_m1 += inst.pt(job, k);
        let ready_on_m2 = time_on_m1 + lag(inst, job, k, l);
        time_on_m2 = time_on_m2.max(ready_on_m2) + inst.pt(job, l);
    }
    time_on_m2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_optimal;
    use crate::instance::Instance;
    use crate::schedule::makespan;

    #[test]
    fn johnson_textbook_example() {
        // Classic example: jobs with (a, b) times.
        let a = vec![3, 5, 1, 6, 7];
        let b = vec![6, 2, 2, 6, 5];
        let order = johnson_order(&a, &b);
        // Jobs with a < b: {0 (3), 2 (1)} sorted by a -> [2, 0]
        // Jobs with a >= b: {1 (b=2), 3 (b=6), 4 (b=5)} sorted by b desc -> [3, 4, 1]
        assert_eq!(order, vec![2, 0, 3, 4, 1]);
    }

    #[test]
    fn johnson_is_optimal_on_small_random_instances() {
        for seed in 1..=10 {
            let inst = crate::taillard::generate(format!("j{seed}"), 7, 2, seed * 17);
            let (order, cmax) = solve_two_machine(&inst);
            assert_eq!(makespan(&inst, &order), cmax);
            let (_, best) = brute_force_optimal(&inst);
            assert_eq!(cmax, best, "Johnson not optimal for seed {seed}");
        }
    }

    #[test]
    fn two_machine_makespan_matches_full_recurrence() {
        let inst = crate::taillard::generate("t", 6, 2, 99);
        let n = inst.jobs();
        let a: Vec<Time> = (0..n).map(|j| inst.pt(j, 0)).collect();
        let b: Vec<Time> = (0..n).map(|j| inst.pt(j, 1)).collect();
        let order: Vec<Job> = (0..n).collect();
        assert_eq!(
            two_machine_makespan(&a, &b, &order),
            makespan(&inst, &order)
        );
    }

    #[test]
    fn lag_is_sum_of_intermediate_machines() {
        let inst = Instance::from_rows("l", &[vec![1, 2, 3, 4, 5]]);
        assert_eq!(lag(&inst, 0, 0, 1), 0);
        assert_eq!(lag(&inst, 0, 0, 2), 2);
        assert_eq!(lag(&inst, 0, 0, 4), 2 + 3 + 4);
        assert_eq!(lag(&inst, 0, 2, 4), 4);
    }

    #[test]
    fn makespan_with_lags_reduces_to_plain_for_adjacent_machines() {
        let inst = crate::taillard::generate("t", 8, 2, 4242);
        let order = johnson_order_with_lags(&inst, 0, 1);
        let with_lags = two_machine_makespan_with_lags(&inst, &order, 0, 1, 0, 0, |_| true);
        assert_eq!(with_lags, makespan(&inst, &order));
    }

    #[test]
    fn releases_shift_the_makespan() {
        let inst = crate::taillard::generate("t", 5, 3, 7);
        let order = johnson_order_with_lags(&inst, 0, 2);
        let base = two_machine_makespan_with_lags(&inst, &order, 0, 2, 0, 0, |_| true);
        let shifted = two_machine_makespan_with_lags(&inst, &order, 0, 2, 10, 0, |_| true);
        assert!(shifted >= base);
        let shifted_l = two_machine_makespan_with_lags(&inst, &order, 0, 2, 0, 1000, |_| true);
        assert!(shifted_l >= 1000);
    }

    #[test]
    fn include_filter_restricts_jobs() {
        let inst = crate::taillard::generate("t", 6, 3, 11);
        let order = johnson_order_with_lags(&inst, 0, 2);
        let all = two_machine_makespan_with_lags(&inst, &order, 0, 2, 0, 0, |_| true);
        let none = two_machine_makespan_with_lags(&inst, &order, 0, 2, 3, 5, |_| false);
        assert_eq!(none, 5);
        assert!(all > none);
    }

    #[test]
    fn johnson_order_is_a_permutation() {
        let inst = crate::taillard::generate("t", 30, 5, 1234);
        for k in 0..4 {
            for l in (k + 1)..5 {
                let order = johnson_order_with_lags(&inst, k, l);
                assert!(crate::schedule::is_permutation(&order, 30));
            }
        }
    }
}
