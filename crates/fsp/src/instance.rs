//! Flow-Shop problem instances.
//!
//! An [`Instance`] is an immutable `n × m` matrix of processing times
//! `p[j][k]` — the uninterrupted time job `j` needs on machine `k`.

use crate::{Job, Machine, Time};
use std::fmt;

/// A permutation Flow-Shop instance: `n` jobs × `m` machines of processing
/// times.
///
/// The matrix is stored row-major by job (`p[j * m + k]`), which is also the
/// layout of the `PTM` matrix that the lower-bound kernel reads
/// (see [`crate::bound::data::BoundData`]).
#[derive(Clone, PartialEq, Eq)]
pub struct Instance {
    name: String,
    jobs: usize,
    machines: usize,
    /// Row-major `jobs × machines` processing times.
    pt: Vec<Time>,
}

impl Instance {
    /// Builds an instance from a row-major processing-time matrix.
    ///
    /// # Panics
    ///
    /// Panics if `pt.len() != jobs * machines`, if either dimension is zero,
    /// or if any processing time is zero (Taillard instances use `1..=99`;
    /// zero-length operations break none of the algorithms but are rejected to
    /// catch transposed-matrix bugs early).
    pub fn new(name: impl Into<String>, jobs: usize, machines: usize, pt: Vec<Time>) -> Self {
        assert!(jobs > 0, "instance must have at least one job");
        assert!(machines > 0, "instance must have at least one machine");
        assert_eq!(
            pt.len(),
            jobs * machines,
            "processing-time matrix must be jobs × machines"
        );
        assert!(
            pt.iter().all(|&p| p > 0),
            "processing times must be strictly positive"
        );
        Self {
            name: name.into(),
            jobs,
            machines,
            pt,
        }
    }

    /// Builds an instance from a per-job list of rows (`rows[j][k]`).
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(name: impl Into<String>, rows: &[Vec<Time>]) -> Self {
        assert!(!rows.is_empty(), "instance must have at least one job");
        let machines = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == machines),
            "all jobs must have the same number of operations"
        );
        let pt = rows.iter().flatten().copied().collect();
        Self::new(name, rows.len(), machines, pt)
    }

    /// Human-readable instance name (e.g. `"ta021"` or `"rand-50x20-7"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of jobs `n`.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Number of machines `m`.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Processing time of `job` on `machine`.
    #[inline]
    pub fn pt(&self, job: Job, machine: Machine) -> Time {
        debug_assert!(job < self.jobs && machine < self.machines);
        self.pt[job * self.machines + machine]
    }

    /// The full row of processing times of `job` over all machines.
    #[inline]
    pub fn job_row(&self, job: Job) -> &[Time] {
        &self.pt[job * self.machines..(job + 1) * self.machines]
    }

    /// Row-major view of the whole processing-time matrix.
    pub fn raw(&self) -> &[Time] {
        &self.pt
    }

    /// Sum of all processing times — a trivial upper bound on the makespan.
    pub fn total_processing_time(&self) -> Time {
        self.pt.iter().sum()
    }

    /// Sum of the processing times of `job` over every machine.
    pub fn job_total(&self, job: Job) -> Time {
        self.job_row(job).iter().sum()
    }

    /// Sum of the processing times on `machine` over every job.
    pub fn machine_load(&self, machine: Machine) -> Time {
        (0..self.jobs).map(|j| self.pt(j, machine)).sum()
    }

    /// A simple per-instance lower bound on the optimal makespan: for each
    /// machine, its total load plus the smallest head before it and the
    /// smallest tail after it. Useful as a sanity oracle in tests.
    pub fn machine_load_bound(&self) -> Time {
        (0..self.machines)
            .map(|k| {
                let head = (0..self.jobs)
                    .map(|j| (0..k).map(|h| self.pt(j, h)).sum::<Time>())
                    .min()
                    .unwrap_or(0);
                let tail = (0..self.jobs)
                    .map(|j| (k + 1..self.machines).map(|h| self.pt(j, h)).sum::<Time>())
                    .min()
                    .unwrap_or(0);
                head + self.machine_load(k) + tail
            })
            .max()
            .unwrap_or(0)
    }

    /// The `n × m` class label used throughout the paper (e.g. `"200x20"`).
    pub fn class(&self) -> String {
        format!("{}x{}", self.jobs, self.machines)
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Instance({}, {} jobs × {} machines)",
            self.name, self.jobs, self.machines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Instance {
        Instance::from_rows("tiny", &[vec![2, 3], vec![4, 1], vec![3, 3]])
    }

    #[test]
    fn dimensions_and_accessors() {
        let inst = tiny();
        assert_eq!(inst.jobs(), 3);
        assert_eq!(inst.machines(), 2);
        assert_eq!(inst.pt(0, 0), 2);
        assert_eq!(inst.pt(1, 1), 1);
        assert_eq!(inst.job_row(2), &[3, 3]);
        assert_eq!(inst.class(), "3x2");
    }

    #[test]
    fn totals() {
        let inst = tiny();
        assert_eq!(inst.total_processing_time(), 16);
        assert_eq!(inst.job_total(0), 5);
        assert_eq!(inst.machine_load(0), 9);
        assert_eq!(inst.machine_load(1), 7);
    }

    #[test]
    fn machine_load_bound_is_sane() {
        let inst = tiny();
        // machine 0: head 0, load 9, tail min(3,1,3)=1 -> 10
        // machine 1: head min(2,4,3)=2, load 7, tail 0 -> 9
        assert_eq!(inst.machine_load_bound(), 10);
    }

    #[test]
    #[should_panic(expected = "jobs × machines")]
    fn wrong_matrix_size_panics() {
        Instance::new("bad", 2, 2, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_processing_time_panics() {
        Instance::new("bad", 1, 2, vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "same number of operations")]
    fn ragged_rows_panic() {
        Instance::from_rows("bad", &[vec![1, 2], vec![3]]);
    }
}
