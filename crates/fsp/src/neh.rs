//! The NEH constructive heuristic (Nawaz, Enscore, Ham, 1983).
//!
//! NEH is the standard way to obtain a good initial *upper bound* for
//! Flow-Shop B&B solvers: sort jobs by decreasing total processing time, then
//! insert each job at the position of the partial sequence that minimises the
//! partial makespan. Its quality directly controls how much of the tree the
//! bounding operator can prune (the paper's Figure 1 starts from an
//! "initial seed UB").

use crate::instance::Instance;
use crate::schedule::makespan;
use crate::{Job, Time};

/// Runs the NEH heuristic and returns `(permutation, makespan)`.
pub fn neh(inst: &Instance) -> (Vec<Job>, Time) {
    let n = inst.jobs();
    let mut order: Vec<Job> = (0..n).collect();
    // Decreasing total processing time, ties by index for determinism.
    order.sort_by_key(|&j| (std::cmp::Reverse(inst.job_total(j)), j));

    let mut seq: Vec<Job> = Vec::with_capacity(n);
    for &job in &order {
        let mut best_pos = 0;
        let mut best_val = Time::MAX;
        for pos in 0..=seq.len() {
            let mut candidate = seq.clone();
            candidate.insert(pos, job);
            let val = partial_makespan(inst, &candidate);
            if val < best_val {
                best_val = val;
                best_pos = pos;
            }
        }
        seq.insert(best_pos, job);
    }
    let cmax = makespan(inst, &seq);
    (seq, cmax)
}

/// Makespan of a *partial* sequence (not all jobs need be present).
fn partial_makespan(inst: &Instance, seq: &[Job]) -> Time {
    let m = inst.machines();
    let mut completion = vec![0 as Time; m];
    for &job in seq {
        let mut prev = 0;
        for (k, c) in completion.iter_mut().enumerate() {
            let start = (*c).max(prev);
            *c = start + inst.pt(job, k);
            prev = *c;
        }
    }
    completion[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_optimal;
    use crate::schedule::is_permutation;

    #[test]
    fn neh_returns_a_valid_permutation() {
        let inst = crate::taillard::generate("t", 20, 5, 555);
        let (perm, cmax) = neh(&inst);
        assert!(is_permutation(&perm, 20));
        assert_eq!(makespan(&inst, &perm), cmax);
    }

    #[test]
    fn neh_is_close_to_optimal_on_tiny_instances() {
        for seed in 1..=8 {
            let inst = crate::taillard::generate(format!("t{seed}"), 7, 4, seed * 31);
            let (_, heuristic) = neh(&inst);
            let (_, optimal) = brute_force_optimal(&inst);
            assert!(heuristic >= optimal);
            // NEH is typically within a few percent; allow a generous 15 %.
            assert!(
                (heuristic as f64) <= (optimal as f64) * 1.15,
                "NEH too far from optimum: {heuristic} vs {optimal} (seed {seed})"
            );
        }
    }

    #[test]
    fn neh_beats_identity_order_on_average() {
        let mut better_or_equal = 0;
        let total = 10;
        for seed in 1..=total {
            let inst = crate::taillard::generate(format!("t{seed}"), 15, 10, seed * 101);
            let (_, heuristic) = neh(&inst);
            let identity: Vec<Job> = (0..15).collect();
            if heuristic <= makespan(&inst, &identity) {
                better_or_equal += 1;
            }
        }
        assert!(better_or_equal >= total - 1);
    }

    #[test]
    fn neh_single_job() {
        let inst = crate::taillard::generate("t", 1, 5, 3);
        let (perm, cmax) = neh(&inst);
        assert_eq!(perm, vec![0]);
        assert_eq!(cmax, inst.job_total(0));
    }
}
