//! Reading and writing Flow-Shop instances in the standard Taillard text
//! format.
//!
//! The format used by Taillard's benchmark files (and by most FSP software)
//! is, per instance:
//!
//! ```text
//! number of jobs, number of machines, initial seed, upper bound and lower bound :
//!          20           5   873654221        1278        1232
//! processing times :
//!  54 83 15 71 77 36 53 38 27 87 76 91 14 29 12 77 32 87 68 94
//!  79  3 11 99 56 70 99 60  5 56  3 61 73 75 47 14 21 86  5 77
//!  ...
//! ```
//!
//! with one row **per machine** (not per job). This module parses that
//! format — tolerantly with respect to header wording and blank lines — and
//! writes it back, so instances can be exchanged with the original benchmark
//! files and with other solvers.

use crate::instance::Instance;
use crate::Time;
use std::fmt::Write as _;

/// Metadata carried by a Taillard-format instance header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaillardHeader {
    /// Number of jobs.
    pub jobs: usize,
    /// Number of machines.
    pub machines: usize,
    /// The generator seed recorded in the file (0 when unknown).
    pub time_seed: i64,
    /// Best known upper bound recorded in the file (0 when unknown).
    pub upper_bound: Time,
    /// Best known lower bound recorded in the file (0 when unknown).
    pub lower_bound: Time,
}

/// An error produced while parsing a Taillard-format file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The file ended before the expected data was read.
    UnexpectedEnd,
    /// A token could not be parsed as an integer.
    BadNumber(String),
    /// The header numbers are inconsistent (zero jobs/machines).
    BadHeader(String),
    /// The processing-time matrix has the wrong number of values.
    WrongMatrixSize {
        /// Values expected (`jobs × machines`).
        expected: usize,
        /// Values found.
        found: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnexpectedEnd => write!(f, "unexpected end of input"),
            ParseError::BadNumber(tok) => write!(f, "cannot parse `{tok}` as a number"),
            ParseError::BadHeader(msg) => write!(f, "bad header: {msg}"),
            ParseError::WrongMatrixSize { expected, found } => {
                write!(f, "expected {expected} processing times, found {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses the first instance of a Taillard-format text.
///
/// Returns the instance (named `name`) and the header metadata.
pub fn parse_taillard(name: &str, text: &str) -> Result<(Instance, TaillardHeader), ParseError> {
    // Collect every integer token in order, ignoring the prose lines.
    let numbers: Vec<i64> = text
        .split(|c: char| !c.is_ascii_digit() && c != '-')
        .filter(|tok| !tok.is_empty() && tok.chars().any(|c| c.is_ascii_digit()))
        .map(|tok| {
            tok.parse::<i64>()
                .map_err(|_| ParseError::BadNumber(tok.to_string()))
        })
        .collect::<Result<_, _>>()?;

    if numbers.len() < 5 {
        return Err(ParseError::UnexpectedEnd);
    }
    let jobs = numbers[0] as usize;
    let machines = numbers[1] as usize;
    if jobs == 0 || machines == 0 {
        return Err(ParseError::BadHeader(format!(
            "jobs = {jobs}, machines = {machines}"
        )));
    }
    let header = TaillardHeader {
        jobs,
        machines,
        time_seed: numbers[2],
        upper_bound: numbers[3].max(0) as Time,
        lower_bound: numbers[4].max(0) as Time,
    };

    let expected = jobs * machines;
    let values = &numbers[5..];
    if values.len() < expected {
        return Err(ParseError::WrongMatrixSize {
            expected,
            found: values.len(),
        });
    }
    // Machine-major rows in the file; transpose to the job-major layout.
    let mut pt = vec![0 as Time; expected];
    for k in 0..machines {
        for j in 0..jobs {
            pt[j * machines + k] = values[k * jobs + j].max(1) as Time;
        }
    }
    Ok((Instance::new(name, jobs, machines, pt), header))
}

/// Writes an instance in the Taillard text format (one row per machine).
pub fn write_taillard(inst: &Instance, header: Option<&TaillardHeader>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "number of jobs, number of machines, initial seed, upper bound and lower bound :"
    );
    let (seed, ub, lb) = header
        .map(|h| (h.time_seed, h.upper_bound, h.lower_bound))
        .unwrap_or((0, 0, 0));
    let _ = writeln!(
        out,
        "{:>12} {:>11} {:>11} {:>11} {:>11}",
        inst.jobs(),
        inst.machines(),
        seed,
        ub,
        lb
    );
    let _ = writeln!(out, "processing times :");
    for k in 0..inst.machines() {
        let row: Vec<String> = (0..inst.jobs())
            .map(|j| format!("{:>3}", inst.pt(j, k)))
            .collect();
        let _ = writeln!(out, " {}", row.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taillard;

    const SAMPLE: &str =
        "number of jobs, number of machines, initial seed, upper bound and lower bound :\n\
                          3 2 12345 99 90\n\
                          processing times :\n\
                          2 4 3\n\
                          3 1 3\n";

    #[test]
    fn parses_the_documented_format() {
        let (inst, header) = parse_taillard("sample", SAMPLE).expect("parse");
        assert_eq!(inst.jobs(), 3);
        assert_eq!(inst.machines(), 2);
        // File rows are per machine: job 0 has p = (2, 3).
        assert_eq!(inst.pt(0, 0), 2);
        assert_eq!(inst.pt(0, 1), 3);
        assert_eq!(inst.pt(1, 0), 4);
        assert_eq!(inst.pt(1, 1), 1);
        assert_eq!(header.time_seed, 12345);
        assert_eq!(header.upper_bound, 99);
        assert_eq!(header.lower_bound, 90);
    }

    #[test]
    fn round_trips_through_write_and_parse() {
        let original = taillard::generate("rt", 20, 5, taillard::TA001_TIME_SEED);
        let text = write_taillard(
            &original,
            Some(&TaillardHeader {
                jobs: 20,
                machines: 5,
                time_seed: taillard::TA001_TIME_SEED,
                upper_bound: 1278,
                lower_bound: 1232,
            }),
        );
        let (parsed, header) = parse_taillard("rt", &text).expect("round trip");
        assert_eq!(parsed.raw(), original.raw());
        assert_eq!(header.time_seed, taillard::TA001_TIME_SEED);
        assert_eq!(header.upper_bound, 1278);
    }

    #[test]
    fn generated_instance_round_trips_without_header() {
        let original = taillard::generate("x", 7, 4, 777);
        let text = write_taillard(&original, None);
        let (parsed, header) = parse_taillard("x", &text).expect("parse");
        assert_eq!(parsed.raw(), original.raw());
        assert_eq!(header.time_seed, 0);
    }

    #[test]
    fn truncated_matrix_is_rejected() {
        let bad = "2 2 0 0 0\nprocessing times:\n1 2\n3\n";
        match parse_taillard("bad", bad) {
            Err(ParseError::WrongMatrixSize {
                expected: 4,
                found: 3,
            }) => {}
            other => panic!("unexpected result: {other:?}"),
        }
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        let bad = "0 2 0 0 0\n";
        assert!(matches!(
            parse_taillard("bad", bad),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn garbage_is_rejected_cleanly() {
        assert!(matches!(
            parse_taillard("bad", "only words here"),
            Err(ParseError::UnexpectedEnd)
        ));
        // Error display is human readable.
        let err = ParseError::WrongMatrixSize {
            expected: 4,
            found: 3,
        };
        assert!(err.to_string().contains("expected 4"));
    }
}
