//! Exhaustive enumeration of all permutations — the test oracle for tiny
//! instances (`n ≤ 10`).

use crate::instance::Instance;
use crate::schedule::makespan;
use crate::{Job, Time};

/// Finds the optimal permutation and makespan by enumerating all `n!`
/// schedules.
///
/// Intended for tests only; refuses instances with more than 10 jobs.
///
/// # Panics
///
/// Panics if `inst.jobs() > 10`.
pub fn brute_force_optimal(inst: &Instance) -> (Vec<Job>, Time) {
    assert!(
        inst.jobs() <= 10,
        "brute force is only meant for tiny test instances (n <= 10)"
    );
    let mut perm: Vec<Job> = (0..inst.jobs()).collect();
    let mut best_perm = perm.clone();
    let mut best = makespan(inst, &perm);
    // Heap's algorithm, iterative.
    let n = perm.len();
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let val = makespan(inst, &perm);
            if val < best {
                best = val;
                best_perm = perm.clone();
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best_perm, best)
}

/// Enumerates every permutation and returns all makespans (useful for
/// distribution-level assertions in tests).
pub fn all_makespans(inst: &Instance) -> Vec<Time> {
    assert!(inst.jobs() <= 8, "all_makespans is O(n!)");
    let mut perm: Vec<Job> = (0..inst.jobs()).collect();
    let mut out = vec![makespan(inst, &perm)];
    let n = perm.len();
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            out.push(makespan(inst, &perm));
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::schedule::is_permutation;

    #[test]
    fn brute_force_on_known_toy() {
        let inst = Instance::from_rows("toy", &[vec![2, 3], vec![4, 1], vec![3, 3]]);
        let (perm, best) = brute_force_optimal(&inst);
        assert!(is_permutation(&perm, 3));
        assert_eq!(best, 10);
        assert_eq!(makespan(&inst, &perm), 10);
    }

    #[test]
    fn brute_force_visits_every_permutation() {
        let inst = crate::taillard::generate("t", 5, 3, 77);
        let all = all_makespans(&inst);
        assert_eq!(all.len(), 120);
        let (_, best) = brute_force_optimal(&inst);
        assert_eq!(best, *all.iter().min().unwrap());
    }

    #[test]
    #[should_panic(expected = "tiny test instances")]
    fn brute_force_rejects_large_instances() {
        let inst = crate::taillard::generate("t", 11, 3, 77);
        brute_force_optimal(&inst);
    }
}
