//! Taillard's Flow-Shop benchmark instance generator.
//!
//! The paper evaluates on Taillard's FSP benchmarks (E. Taillard, *Benchmarks
//! for basic scheduling problems*, EJOR 64, 1993). The benchmark files are not
//! redistributed here; instead this module re-implements the published
//! *generator* — a portable Lehmer linear-congruential generator
//! (`a = 16807`, `m = 2^31 − 1`, Schrage's decomposition) and the exact
//! generation order (machine-major, processing times uniform in `1..=99`) —
//! so that instances from the same distribution can be produced from any seed,
//! and the official instances can be reproduced bit-exactly when their
//! published `time_seed` is supplied.
//!
//! The paper's evaluation uses the four 20-machine classes
//! `20×20`, `50×20`, `100×20` and `200×20`; [`paper_classes`] returns them.

use crate::instance::Instance;
use crate::Time;

/// Taillard's portable uniform pseudo-random generator (Lehmer LCG with
/// Schrage's trick), exactly as published in the benchmark description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaillardRng {
    seed: i64,
}

impl TaillardRng {
    const A: i64 = 16807;
    const B: i64 = 127773;
    const C: i64 = 2836;
    const M: i64 = 2_147_483_647;

    /// Creates the generator from a strictly positive seed (the benchmark's
    /// `time_seed`).
    ///
    /// # Panics
    ///
    /// Panics if `seed` is not in `1..2^31-1`.
    pub fn new(seed: i64) -> Self {
        assert!(
            seed > 0 && seed < Self::M,
            "Taillard seeds must be in 1..2^31-1, got {seed}"
        );
        Self { seed }
    }

    /// Returns the current internal seed (useful for reproducing the
    /// generator state).
    pub fn state(&self) -> i64 {
        self.seed
    }

    /// Draws a uniformly distributed integer in `low..=high`, advancing the
    /// generator, exactly like Taillard's `unif` procedure.
    pub fn unif(&mut self, low: i64, high: i64) -> i64 {
        debug_assert!(low <= high);
        let k = self.seed / Self::B;
        self.seed = Self::A * (self.seed % Self::B) - k * Self::C;
        if self.seed < 0 {
            self.seed += Self::M;
        }
        let value_0_1 = self.seed as f64 / Self::M as f64;
        low + (value_0_1 * (high - low + 1) as f64) as i64
    }
}

/// Generates a Taillard-style instance of `jobs × machines` from a
/// `time_seed`, following the exact published order: processing times are
/// drawn machine-major (`for machine { for job { unif(1, 99) } }`).
///
/// When `time_seed` is one of the official published seeds this reproduces
/// the corresponding official instance bit-exactly; for any other seed it
/// produces an instance from the same distribution ("Taillard-like", which is
/// what the evaluation harness uses — see DESIGN.md, hardware substitution).
pub fn generate(name: impl Into<String>, jobs: usize, machines: usize, time_seed: i64) -> Instance {
    let mut rng = TaillardRng::new(time_seed);
    // Machine-major generation order, as in the published generator.
    let mut by_machine = vec![vec![0 as Time; jobs]; machines];
    for machine_row in by_machine.iter_mut() {
        for p in machine_row.iter_mut() {
            *p = rng.unif(1, 99) as Time;
        }
    }
    // Transpose to the job-major layout used by `Instance`.
    let mut pt = Vec::with_capacity(jobs * machines);
    for j in 0..jobs {
        for machine_row in by_machine.iter() {
            pt.push(machine_row[j]);
        }
    }
    Instance::new(name, jobs, machines, pt)
}

/// The published `time_seed` of the very first official instance, `ta001`
/// (20 jobs × 5 machines). Used as a regression anchor for the generator.
pub const TA001_TIME_SEED: i64 = 873_654_221;

/// Generates the official `ta001` (20 × 5) instance.
pub fn ta001() -> Instance {
    generate("ta001", 20, 5, TA001_TIME_SEED)
}

/// An instance *class* of the paper's evaluation: `n` jobs × `m` machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstanceClass {
    /// Number of jobs.
    pub jobs: usize,
    /// Number of machines.
    pub machines: usize,
}

impl InstanceClass {
    /// `"n x m"` label as used in the paper's tables (e.g. `200x20`).
    pub fn label(&self) -> String {
        format!("{}x{}", self.jobs, self.machines)
    }
}

/// The four instance classes used in the paper's experiments
/// (Tables II-IV, Figures 4-5): 20×20, 50×20, 100×20 and 200×20.
///
/// The 500-job class is excluded, as in the paper ("because they do not fit
/// in the memory of the CPU").
pub fn paper_classes() -> [InstanceClass; 4] {
    [
        InstanceClass {
            jobs: 20,
            machines: 20,
        },
        InstanceClass {
            jobs: 50,
            machines: 20,
        },
        InstanceClass {
            jobs: 100,
            machines: 20,
        },
        InstanceClass {
            jobs: 200,
            machines: 20,
        },
    ]
}

/// Generates one Taillard-like instance per paper class, deterministically
/// derived from `base_seed` (instance *i* uses `base_seed + i`).
pub fn paper_instances(base_seed: i64) -> Vec<Instance> {
    paper_classes()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            generate(
                format!("rand-{}-s{}", c.label(), base_seed + i as i64),
                c.jobs,
                c.machines,
                base_seed + i as i64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_matches_reference_sequence() {
        // First draws of the Lehmer generator with Schrage's decomposition for
        // seed 873654221 (ta001's time_seed), computed independently.
        let mut rng = TaillardRng::new(TA001_TIME_SEED);
        let first: Vec<i64> = (0..5).map(|_| rng.unif(1, 99)).collect();
        // Reference values obtained by evaluating the published recurrence
        // seed' = 16807*(seed mod 127773) - 2836*(seed div 127773) (mod 2^31-1)
        let mut seed: i64 = TA001_TIME_SEED;
        let mut expect = Vec::new();
        for _ in 0..5 {
            let k = seed / 127_773;
            seed = 16807 * (seed % 127_773) - k * 2836;
            if seed < 0 {
                seed += 2_147_483_647;
            }
            let v = 1 + ((seed as f64 / 2_147_483_647f64) * 99.0) as i64;
            expect.push(v);
        }
        assert_eq!(first, expect);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TaillardRng::new(12345);
        let mut b = TaillardRng::new(12345);
        for _ in 0..1000 {
            assert_eq!(a.unif(1, 99), b.unif(1, 99));
        }
    }

    #[test]
    fn rng_range_is_respected() {
        let mut rng = TaillardRng::new(987_654_321);
        for _ in 0..10_000 {
            let v = rng.unif(1, 99);
            assert!((1..=99).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn rng_rejects_bad_seeds() {
        assert!(std::panic::catch_unwind(|| TaillardRng::new(0)).is_err());
        assert!(std::panic::catch_unwind(|| TaillardRng::new(-5)).is_err());
        assert!(std::panic::catch_unwind(|| TaillardRng::new(2_147_483_647)).is_err());
    }

    #[test]
    fn generate_produces_correct_shape() {
        let inst = generate("t", 50, 20, 42);
        assert_eq!(inst.jobs(), 50);
        assert_eq!(inst.machines(), 20);
        assert!(inst.raw().iter().all(|&p| (1..=99).contains(&p)));
    }

    #[test]
    fn ta001_is_stable() {
        // Regression anchor: the generated ta001 matrix must never change.
        let a = ta001();
        let b = ta001();
        assert_eq!(a.raw(), b.raw());
        assert_eq!(a.jobs(), 20);
        assert_eq!(a.machines(), 5);
        // Machine-major generation: the first drawn value is job 0 / machine 0.
        let mut rng = TaillardRng::new(TA001_TIME_SEED);
        assert_eq!(a.pt(0, 0), rng.unif(1, 99) as Time);
    }

    #[test]
    fn paper_classes_match_the_paper() {
        let classes = paper_classes();
        assert_eq!(classes.len(), 4);
        assert!(classes.iter().all(|c| c.machines == 20));
        let labels: Vec<_> = classes.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["20x20", "50x20", "100x20", "200x20"]);
    }

    #[test]
    fn paper_instances_are_distinct() {
        let insts = paper_instances(1000);
        assert_eq!(insts.len(), 4);
        assert_ne!(insts[0].raw()[..10], insts[1].raw()[..10]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate("a", 20, 5, 1);
        let b = generate("b", 20, 5, 2);
        assert_ne!(a.raw(), b.raw());
    }
}
