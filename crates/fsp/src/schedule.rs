//! Makespan evaluation of complete and partial permutation schedules.
//!
//! In a permutation flow shop a schedule is fully described by one permutation
//! of the jobs: every machine processes the jobs in that order. The makespan
//! is obtained by the classical completion-time recurrence
//! `C[j][k] = max(C[j-1][k], C[j][k-1]) + p[π(j)][k]`.
//!
//! A *partial* schedule (the B&B tree nodes) is a prefix of a permutation;
//! its state is summarised by the *front* — the completion time of the prefix
//! on every machine — which is all the lower bound needs.

use crate::instance::Instance;
use crate::{Job, Time};

/// Computes the makespan of a complete permutation `perm` on `inst`.
///
/// # Panics
///
/// Panics (in debug builds) if `perm` is not a permutation of `0..n`.
pub fn makespan(inst: &Instance, perm: &[Job]) -> Time {
    debug_assert_eq!(perm.len(), inst.jobs());
    debug_assert!(is_permutation(perm, inst.jobs()));
    let m = inst.machines();
    let mut completion = vec![0 as Time; m];
    for &job in perm {
        let mut prev = 0;
        for (k, c) in completion.iter_mut().enumerate() {
            let start = (*c).max(prev);
            *c = start + inst.pt(job, k);
            prev = *c;
        }
    }
    completion[m - 1]
}

/// Computes the *front* of a prefix: element `k` is the completion time of the
/// last prefix job on machine `k` (all zeros for an empty prefix).
pub fn makespan_prefix(inst: &Instance, prefix: &[Job]) -> Vec<Time> {
    let m = inst.machines();
    let mut completion = vec![0 as Time; m];
    for &job in prefix {
        let mut prev = 0;
        for (k, c) in completion.iter_mut().enumerate() {
            let start = (*c).max(prev);
            *c = start + inst.pt(job, k);
            prev = *c;
        }
    }
    completion
}

/// Returns `true` when `perm` is a permutation of `0..n`.
pub fn is_permutation(perm: &[Job], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &j in perm {
        if j >= n || seen[j] {
            return false;
        }
        seen[j] = true;
    }
    true
}

/// A partial schedule: an immutable instance reference plus a scheduled
/// prefix, maintained incrementally with its front.
///
/// This is the CPU-side representation of a B&B node's schedule. Both
/// `push` and `pop` are `O(m)`: every push snapshots the previous front onto
/// a per-depth stack, so a pop restores it by copy instead of replaying the
/// whole prefix through the completion-time recurrence.
#[derive(Debug, Clone)]
pub struct PartialSchedule<'a> {
    inst: &'a Instance,
    prefix: Vec<Job>,
    scheduled: Vec<bool>,
    front: Vec<Time>,
    /// Front snapshots of every shallower depth, flattened: entry `d` of the
    /// stack (`m` values starting at `d * m`) is the front *before* the job
    /// at depth `d` was pushed.
    front_stack: Vec<Time>,
}

impl<'a> PartialSchedule<'a> {
    /// Creates an empty partial schedule for `inst`.
    pub fn new(inst: &'a Instance) -> Self {
        Self {
            inst,
            prefix: Vec::with_capacity(inst.jobs()),
            scheduled: vec![false; inst.jobs()],
            front: vec![0; inst.machines()],
            front_stack: Vec::new(),
        }
    }

    /// Creates a partial schedule from an existing prefix.
    ///
    /// # Panics
    ///
    /// Panics if the prefix repeats a job or references a job `>= n`.
    pub fn from_prefix(inst: &'a Instance, prefix: &[Job]) -> Self {
        let mut s = Self::new(inst);
        for &j in prefix {
            s.push(j);
        }
        s
    }

    /// The instance this schedule belongs to.
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// The scheduled prefix, in order.
    pub fn prefix(&self) -> &[Job] {
        &self.prefix
    }

    /// Completion times of the prefix on every machine.
    pub fn front(&self) -> &[Time] {
        &self.front
    }

    /// Number of scheduled jobs.
    pub fn depth(&self) -> usize {
        self.prefix.len()
    }

    /// Number of jobs still to schedule (`n'` in the paper's Table I).
    pub fn remaining(&self) -> usize {
        self.inst.jobs() - self.prefix.len()
    }

    /// `true` when every job is scheduled.
    pub fn is_complete(&self) -> bool {
        self.prefix.len() == self.inst.jobs()
    }

    /// `true` when `job` is already in the prefix.
    pub fn is_scheduled(&self, job: Job) -> bool {
        self.scheduled[job]
    }

    /// Iterator over the jobs not yet scheduled, in index order.
    pub fn unscheduled(&self) -> impl Iterator<Item = Job> + '_ {
        (0..self.inst.jobs()).filter(move |&j| !self.scheduled[j])
    }

    /// Appends `job` to the prefix, updating the front in `O(m)`.
    ///
    /// # Panics
    ///
    /// Panics if the job is already scheduled or out of range.
    pub fn push(&mut self, job: Job) {
        assert!(job < self.inst.jobs(), "job {job} out of range");
        assert!(!self.scheduled[job], "job {job} already scheduled");
        self.scheduled[job] = true;
        self.prefix.push(job);
        self.front_stack.extend_from_slice(&self.front);
        let mut prev = 0;
        for (k, c) in self.front.iter_mut().enumerate() {
            let start = (*c).max(prev);
            *c = start + self.inst.pt(job, k);
            prev = *c;
        }
    }

    /// Removes the last scheduled job and restores the previous front.
    ///
    /// Returns the popped job, or `None` if the prefix is empty. The front is
    /// restored from the per-depth snapshot taken by [`Self::push`] in
    /// `O(m)` — the depth-first solver and every bound-through-schedule path
    /// pop constantly, so replaying the prefix (`O(l·m)`) here would make the
    /// pop cost grow with the depth.
    pub fn pop(&mut self) -> Option<Job> {
        let job = self.prefix.pop()?;
        self.scheduled[job] = false;
        let m = self.front.len();
        let base = self.front_stack.len() - m;
        self.front.copy_from_slice(&self.front_stack[base..]);
        self.front_stack.truncate(base);
        Some(job)
    }

    /// Makespan of the prefix alone (completion of its last job on the last
    /// machine). Equals the full makespan when the schedule is complete.
    pub fn prefix_makespan(&self) -> Time {
        *self.front.last().expect("at least one machine")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    /// The 3-job, 2-machine toy used below has a known optimal value.
    fn toy() -> Instance {
        Instance::from_rows("toy", &[vec![2, 3], vec![4, 1], vec![3, 3]])
    }

    #[test]
    fn makespan_matches_hand_computation() {
        let inst = toy();
        // order 0,1,2:
        // M0: 2, 6, 9 ; M1: 5, 7, 12
        assert_eq!(makespan(&inst, &[0, 1, 2]), 12);
        // order 0,2,1:
        // M0: 2, 5, 9 ; M1: 5, 8, 10
        assert_eq!(makespan(&inst, &[0, 2, 1]), 10);
    }

    #[test]
    fn makespan_of_single_job() {
        let inst = Instance::from_rows("one", &[vec![5, 7, 2]]);
        assert_eq!(makespan(&inst, &[0]), 14);
    }

    #[test]
    fn prefix_front_matches_full_recurrence() {
        let inst = toy();
        let front = makespan_prefix(&inst, &[0, 1]);
        assert_eq!(front, vec![6, 7]);
        let empty = makespan_prefix(&inst, &[]);
        assert_eq!(empty, vec![0, 0]);
    }

    #[test]
    fn partial_schedule_incremental_equals_batch() {
        let inst = toy();
        let mut s = PartialSchedule::new(&inst);
        s.push(2);
        s.push(0);
        assert_eq!(s.front(), makespan_prefix(&inst, &[2, 0]).as_slice());
        assert_eq!(s.depth(), 2);
        assert_eq!(s.remaining(), 1);
        assert!(!s.is_complete());
        assert_eq!(s.unscheduled().collect::<Vec<_>>(), vec![1]);
        s.push(1);
        assert!(s.is_complete());
        assert_eq!(s.prefix_makespan(), makespan(&inst, &[2, 0, 1]));
    }

    #[test]
    fn pop_restores_previous_state() {
        let inst = toy();
        let mut s = PartialSchedule::from_prefix(&inst, &[1, 0]);
        let front_before = s.front().to_vec();
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.front(), front_before.as_slice());
        assert!(!s.is_scheduled(2));
        assert_eq!(s.prefix(), &[1, 0]);
    }

    #[test]
    fn pop_on_empty_returns_none() {
        let inst = toy();
        let mut s = PartialSchedule::new(&inst);
        assert_eq!(s.pop(), None);
    }

    #[test]
    #[should_panic(expected = "already scheduled")]
    fn double_push_panics() {
        let inst = toy();
        let mut s = PartialSchedule::new(&inst);
        s.push(0);
        s.push(0);
    }

    #[test]
    fn is_permutation_detects_problems() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 0, 1], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 1, 3], 3));
    }
}
