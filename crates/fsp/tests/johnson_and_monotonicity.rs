//! Satellite test suite: Johnson's 2-machine optimality against the brute
//! oracle, and makespan monotonicity under prefix extension.

use fsp::brute::{all_makespans, brute_force_optimal};
use fsp::johnson::{johnson_order, solve_two_machine, two_machine_makespan};
use fsp::schedule::{makespan, makespan_prefix};
use fsp::taillard;

/// Johnson's rule must match exhaustive enumeration on every tiny 2-machine
/// instance we throw at it, across sizes and seeds.
#[test]
fn johnson_equals_brute_force_on_two_machines() {
    for jobs in 3..=7 {
        for seed in [1, 5, 9, 42, 77, 1001, 9999] {
            let inst = taillard::generate(format!("jopt-{jobs}-{seed}"), jobs, 2, seed);
            let (order, cmax) = solve_two_machine(&inst);
            assert_eq!(
                makespan(&inst, &order),
                cmax,
                "reported makespan must match evaluation ({jobs} jobs, seed {seed})"
            );
            let (_, best) = brute_force_optimal(&inst);
            assert_eq!(cmax, best, "Johnson suboptimal on {jobs} jobs, seed {seed}");
        }
    }
}

/// Degenerate two-machine shapes that exercise Johnson's tie-breaking: all
/// times equal, a == b per job, and second machine dominated by the first.
#[test]
fn johnson_handles_tie_heavy_instances() {
    let cases: [(&[u32], &[u32]); 3] = [
        (&[5, 5, 5, 5], &[5, 5, 5, 5]),
        (&[3, 7, 2, 9], &[3, 7, 2, 9]),
        (&[9, 8, 7, 6], &[1, 1, 1, 1]),
    ];
    for (a, b) in cases {
        let order = johnson_order(a, b);
        let johnson = two_machine_makespan(a, b, &order);
        let rows: Vec<Vec<u32>> = a.iter().zip(b).map(|(&x, &y)| vec![x, y]).collect();
        let inst = fsp::Instance::from_rows("ties", &rows);
        let (_, best) = brute_force_optimal(&inst);
        assert_eq!(johnson, best, "ties: a={a:?} b={b:?}");
    }
}

/// Extending a prefix by one job never decreases any machine's completion
/// time, and the last machine's front reaches the full makespan when the
/// prefix becomes the whole permutation.
#[test]
fn front_is_monotone_under_prefix_extension() {
    let inst = taillard::generate("mono", 7, 4, 321);
    let n = inst.jobs();
    for seed in 0..6u64 {
        // A deterministic pseudo-random permutation per seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_mul(0x9e37_79b9).wrapping_add(13);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            perm.swap(i, (state >> 33) as usize % (i + 1));
        }

        let mut prev = makespan_prefix(&inst, &[]);
        for len in 1..=n {
            let front = makespan_prefix(&inst, &perm[..len]);
            for k in 0..inst.machines() {
                assert!(
                    front[k] >= prev[k],
                    "front regressed on machine {k} at prefix length {len}"
                );
            }
            prev = front;
        }
        assert_eq!(*prev.last().unwrap(), makespan(&inst, &perm));
    }
}

/// The prefix front is a valid *optimistic* view: for any prefix of the
/// optimal permutation, the completion on the last machine never exceeds the
/// optimal makespan (oracle: brute force).
#[test]
fn optimal_prefix_fronts_stay_below_the_optimum() {
    let inst = taillard::generate("mono-opt", 6, 3, 2024);
    let (opt_perm, opt) = brute_force_optimal(&inst);
    for len in 0..=opt_perm.len() {
        let front = makespan_prefix(&inst, &opt_perm[..len]);
        assert!(
            *front.last().unwrap() <= opt,
            "prefix of the optimum overshoots the optimal makespan"
        );
    }
    // And the optimum is the minimum over all full schedules.
    let all = all_makespans(&inst);
    assert_eq!(opt, *all.iter().min().unwrap());
}

/// Scheduling one more job can only grow the *makespan of the completed
/// schedule* obtained by any fixed completion rule (here: append remaining
/// jobs in index order). This is the monotonicity the B&B elimination step
/// relies on: a child's evaluation never undercuts what its parent already
/// committed to.
#[test]
fn committed_prefix_work_is_irrevocable() {
    let inst = taillard::generate("mono-commit", 6, 5, 451);
    let n = inst.jobs();
    let complete = |prefix: &[usize]| -> u32 {
        let mut full = prefix.to_vec();
        full.extend((0..n).filter(|j| !prefix.contains(j)));
        makespan(&inst, &full)
    };
    let (opt_perm, opt) = brute_force_optimal(&inst);
    for len in 0..n {
        // Any completion of any prefix is at least the optimum.
        assert!(complete(&opt_perm[..len]) >= opt);
    }
}
