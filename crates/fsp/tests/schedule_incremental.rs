//! Property tests for the incremental `PartialSchedule`: after **any**
//! interleaving of `push` and `pop`, the schedule must be bit-identical to
//! one rebuilt from scratch — same prefix, same scheduled set, and the same
//! front as the full completion-time recurrence. This pins down the
//! per-depth front-snapshot optimisation (`pop` restores in `O(m)` instead
//! of replaying the prefix): any drift between the snapshot stack and the
//! recurrence shows up immediately.

use fsp::schedule::makespan_prefix;
use fsp::{taillard, PartialSchedule};
use proptest::prelude::*;

/// Strategy: a small random instance (2..=10 jobs, 1..=8 machines).
fn instance_shape() -> impl Strategy<Value = (usize, usize, i64)> {
    (2usize..=10, 1usize..=8, 1i64..1_000_000)
}

/// Asserts that `sched` is indistinguishable from a schedule rebuilt from
/// scratch over the same prefix.
fn assert_matches_rebuild(inst: &fsp::Instance, sched: &PartialSchedule<'_>) {
    let prefix: Vec<usize> = sched.prefix().to_vec();
    let rebuilt = PartialSchedule::from_prefix(inst, &prefix);
    assert_eq!(sched.prefix(), rebuilt.prefix());
    assert_eq!(
        sched.front(),
        rebuilt.front(),
        "front deviates from a from-scratch rebuild at prefix {prefix:?}"
    );
    assert_eq!(
        sched.front(),
        makespan_prefix(inst, &prefix).as_slice(),
        "front deviates from the completion-time recurrence at prefix {prefix:?}"
    );
    for job in 0..inst.jobs() {
        assert_eq!(sched.is_scheduled(job), prefix.contains(&job));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_push_pop_sequence_matches_a_from_scratch_recompute(
        (n, m, seed) in instance_shape(),
        ops in proptest::collection::vec(0u32..100, 0..64),
    ) {
        let inst = taillard::generate("sched-prop", n, m, seed);
        let mut sched = PartialSchedule::new(&inst);
        for op in ops {
            // Bias 60/40 toward pushes so sequences reach real depths, and
            // use the op value to pick which unscheduled job goes next.
            let push = op % 10 < 6;
            if push && !sched.is_complete() {
                let remaining: Vec<usize> = sched.unscheduled().collect();
                sched.push(remaining[op as usize % remaining.len()]);
            } else if sched.depth() > 0 {
                let before = sched.prefix().to_vec();
                let popped = sched.pop();
                prop_assert_eq!(popped, before.last().copied());
            } else {
                prop_assert_eq!(sched.pop(), None);
            }
            assert_matches_rebuild(&inst, &sched);
        }
    }

    #[test]
    fn drain_to_empty_restores_the_zero_front(
        (n, m, seed) in instance_shape(),
    ) {
        let inst = taillard::generate("sched-drain", n, m, seed);
        let mut sched = PartialSchedule::new(&inst);
        for job in 0..n {
            sched.push(job);
        }
        prop_assert!(sched.is_complete());
        while sched.pop().is_some() {
            assert_matches_rebuild(&inst, &sched);
        }
        prop_assert_eq!(sched.depth(), 0);
        prop_assert_eq!(sched.front(), vec![0; m].as_slice());
        // A drained schedule is reusable: push again and stay consistent.
        sched.push(n - 1);
        assert_matches_rebuild(&inst, &sched);
    }
}
