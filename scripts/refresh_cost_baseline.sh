#!/usr/bin/env bash
# Regenerates BENCH_cost_baseline.json — the committed reference of the
# blocking `cost-gate` CI job. Unlike the wall-clock baseline, every figure
# in this file is a deterministic counter (a pure function of the frozen
# smoke workload and the cost model), so the file is bit-identical across
# machines: refresh it on ANY machine whenever a commit intentionally
# changes the modelled work, and commit the result with that change.
# The gate compares with exact equality — see docs/BENCHMARKING.md.
#
# Usage: scripts/refresh_cost_baseline.sh [output-path]
#        (default: BENCH_cost_baseline.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_cost_baseline.json}"

cargo build --release -p bench --bin solve_taillard
# The five standalone smoke rows, the four per-job service rows and the
# four per-request cache rows — the same command the cost-gate CI job runs.
./target/release/solve_taillard --smoke --service --cache --jobs 4 \
    --emit-cost-baseline "$out" >/dev/null

# Determinism self-check: a second run must reproduce the file byte for
# byte. If it does not, the counters picked up a nondeterministic input —
# fix that before committing anything.
second="$(mktemp)"
trap 'rm -f "$second"' EXIT
./target/release/solve_taillard --smoke --service --cache --jobs 4 \
    --emit-cost-baseline "$second" >/dev/null
cmp "$out" "$second"

echo "wrote $out (bit-identical across two runs):"
grep -E '"(backend|devices|lookahead|job)"' "$out" | sed 's/^ */  /'
echo "commit $out together with the change that moved the counters"
