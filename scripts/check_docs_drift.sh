#!/usr/bin/env bash
# Docs-drift check: the command-line flags advertised by
# `solve_taillard --help` and the "Command-line flags" table in
# docs/BENCHMARKING.md must agree exactly. CI runs this script; it fails
# (with a diff) when a flag is added, renamed or removed on one side only.
#
# Usage: scripts/check_docs_drift.sh [path-to-solve_taillard]
#        (default: builds and uses target/release/solve_taillard)
set -euo pipefail
cd "$(dirname "$0")/.."

bin="${1:-target/release/solve_taillard}"
if [ ! -x "$bin" ]; then
    cargo build --release -q -p bench --bin solve_taillard
    bin=target/release/solve_taillard
fi

# Every `--flag` token in the help text, deduplicated.
help_flags="$("$bin" --help | grep -oE '\-\-[a-z][a-z-]*' | sort -u)"
# Every `--flag` leading a row of the docs table (rows look like
# "| `--flag` | meaning |").
doc_flags="$(grep -oE '^\| `--[a-z][a-z-]*`' docs/BENCHMARKING.md \
    | grep -oE '\-\-[a-z][a-z-]*' | sort -u)"

if ! diff -u \
    --label 'solve_taillard --help' \
    --label 'docs/BENCHMARKING.md flags table' \
    <(printf '%s\n' "$help_flags") <(printf '%s\n' "$doc_flags"); then
    echo >&2
    echo "docs drift: the flags table in docs/BENCHMARKING.md disagrees with" >&2
    echo "solve_taillard --help — update both sides together." >&2
    exit 1
fi

count="$(printf '%s\n' "$help_flags" | wc -l | tr -d ' ')"
echo "docs drift: ok — $count flags agree between --help and docs/BENCHMARKING.md"
