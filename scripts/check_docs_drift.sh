#!/usr/bin/env bash
# Docs-drift check: the command-line flags advertised by
# `solve_taillard --help` and the "Command-line flags" table in
# docs/BENCHMARKING.md must agree exactly. CI runs this script; it fails
# (with a diff) when a flag is added, renamed or removed on one side only.
#
# Usage: scripts/check_docs_drift.sh [path-to-solve_taillard]
#        (default: builds and uses target/release/solve_taillard)
set -euo pipefail
cd "$(dirname "$0")/.."

bin="${1:-target/release/solve_taillard}"
if [ ! -x "$bin" ]; then
    cargo build --release -q -p bench --bin solve_taillard
    bin=target/release/solve_taillard
fi

# Every `--flag` token in the help text, deduplicated.
help_flags="$("$bin" --help | grep -oE '\-\-[a-z][a-z-]*' | sort -u)"
# Every `--flag` leading a row of the docs table (rows look like
# "| `--flag` | meaning |").
doc_flags="$(grep -oE '^\| `--[a-z][a-z-]*`' docs/BENCHMARKING.md \
    | grep -oE '\-\-[a-z][a-z-]*' | sort -u)"

if ! diff -u \
    --label 'solve_taillard --help' \
    --label 'docs/BENCHMARKING.md flags table' \
    <(printf '%s\n' "$help_flags") <(printf '%s\n' "$doc_flags"); then
    echo >&2
    echo "docs drift: the flags table in docs/BENCHMARKING.md disagrees with" >&2
    echo "solve_taillard --help — update both sides together." >&2
    exit 1
fi

count="$(printf '%s\n' "$help_flags" | wc -l | tr -d ' ')"
echo "docs drift: ok — $count flags agree between --help and docs/BENCHMARKING.md"

# Schema-version drift: the newest perf-report schema tag the binary's
# source emits and the newest one docs/BENCHMARKING.md documents must be
# the same version — a schema bump that forgets the docs (or vice versa)
# fails here.
emitter_schema="$(grep -oE 'flowshop-bnb-perf-report/v[0-9]+' \
    crates/bench/src/bin/solve_taillard.rs | sort -uV | tail -1)"
docs_schema="$(grep -oE 'flowshop-bnb-perf-report/v[0-9]+' \
    docs/BENCHMARKING.md | sort -uV | tail -1)"
if [ "$emitter_schema" != "$docs_schema" ]; then
    echo "docs drift: report schema disagrees — the emitter writes" >&2
    echo "\`$emitter_schema\` but docs/BENCHMARKING.md documents \`$docs_schema\`." >&2
    exit 1
fi
echo "docs drift: ok — report schema $emitter_schema agrees between emitter and docs"

# Same for the checkpoint schema (emitted by gpu_bnb::fault, documented in
# docs/BENCHMARKING.md's checkpoint/resume section).
ckpt_schema="$(grep -oE 'flowshop-bnb-checkpoint/v[0-9]+' \
    crates/core/src/fault.rs | sort -uV | tail -1)"
ckpt_docs="$(grep -oE 'flowshop-bnb-checkpoint/v[0-9]+' \
    docs/BENCHMARKING.md | sort -uV | tail -1)"
if [ "$ckpt_schema" != "$ckpt_docs" ]; then
    echo "docs drift: checkpoint schema disagrees — gpu_bnb::fault writes" >&2
    echo "\`$ckpt_schema\` but docs/BENCHMARKING.md documents \`${ckpt_docs:-nothing}\`." >&2
    exit 1
fi
echo "docs drift: ok — checkpoint schema $ckpt_schema agrees between emitter and docs"

# Cache-counter drift: the three v9 cache cost counters priced by
# `gpu_bnb::cost` must be named in both the caching guide and the
# benchmarking guide — a renamed or added counter that forgets the docs
# fails here.
for counter in cache_hits cache_warm_starts cache_invalidated_nodes; do
    if ! grep -q "$counter" crates/core/src/cost.rs; then
        echo "docs drift: counter \`$counter\` not found in crates/core/src/cost.rs" >&2
        exit 1
    fi
    for doc in docs/CACHING.md docs/BENCHMARKING.md; do
        if ! grep -q "$counter" "$doc"; then
            echo "docs drift: cost counter \`$counter\` is priced by gpu_bnb::cost" >&2
            echo "but not documented in $doc." >&2
            exit 1
        fi
    done
done
echo "docs drift: ok — the three cache counters are named in docs/CACHING.md and docs/BENCHMARKING.md"
