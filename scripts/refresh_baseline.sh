#!/usr/bin/env bash
# Regenerates BENCH_baseline.json — the committed reference of the
# bench-smoke perf gate — by running the frozen smoke workload (best of 3)
# on this machine. The procedure is documented in docs/BENCHMARKING.md:
# the nodes/sec figures are machine-dependent, so only commit a refresh
# taken on the hardware class CI runs on (or after an intentional perf
# change on that class). CI exposes this as the manual `refresh-baseline`
# workflow_dispatch job, which uploads the candidate as an artifact.
#
# Usage: scripts/refresh_baseline.sh [output-path]   (default: BENCH_baseline.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_baseline.json}"

cargo build --release -p bench --bin solve_taillard
./target/release/solve_taillard --smoke --json "$out" >/dev/null

echo "wrote $out:"
grep -E '"(backend|devices|lookahead|nodes_per_sec)"' "$out" | sed 's/^ */  /'
echo "review the figures, then commit $out (reference hardware only — see docs/BENCHMARKING.md)"
